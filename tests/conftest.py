"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterSpec, cluster1
from repro.data import SparseDataset, SyntheticSpec, generate
from repro.glm import Objective


@pytest.fixture
def tiny_dataset() -> SparseDataset:
    """800 x 64 separable-ish dataset; fast enough for trainer tests."""
    return generate(SyntheticSpec(n_rows=800, n_features=64,
                                  nnz_per_row=8.0, noise=0.02, seed=7),
                    name="tiny")


@pytest.fixture
def small_dataset() -> SparseDataset:
    """2,000 x 200 dataset for integration-level checks."""
    return generate(SyntheticSpec(n_rows=2000, n_features=200,
                                  nnz_per_row=12.0, noise=0.03, seed=11),
                    name="small")


@pytest.fixture
def underdetermined_dataset() -> SparseDataset:
    """More features than rows (url/kddb style)."""
    return generate(SyntheticSpec(n_rows=300, n_features=600,
                                  nnz_per_row=20.0, noise=0.01, seed=13),
                    name="under")


@pytest.fixture
def cluster() -> ClusterSpec:
    """The paper's Cluster 1 (1 driver + 8 executors)."""
    return cluster1()


@pytest.fixture
def small_cluster() -> ClusterSpec:
    """Four executors; cheaper for exhaustive trainer tests."""
    return cluster1(executors=4)


@pytest.fixture
def hinge_objective() -> Objective:
    return Objective("hinge")


@pytest.fixture
def hinge_l2_objective() -> Objective:
    return Objective("hinge", "l2", 0.1)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
