"""Fixture package exercising call-graph construction: a re-exported
entry point, a two-module recursion cycle, aliased imports, and method
resolution through a project-defined base class."""

from .alpha import ping
