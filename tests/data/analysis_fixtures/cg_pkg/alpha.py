"""Half of the import cycle; uses an aliased relative module import."""

from . import beta as b


def ping(n):
    if n <= 0:
        return 0
    return b.pong(n - 1)
