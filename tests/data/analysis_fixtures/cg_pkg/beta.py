"""Other half of the cycle; imports alpha's function under an alias."""

from .alpha import ping as bounce


def pong(n):
    return bounce(n)
