"""Method resolution: ``self.helper()`` must resolve through the MRO to
a project-defined base class; constructor calls route to ``__init__``."""


class Base:
    def helper(self):
        return 1


class Child(Base):
    def __init__(self, k):
        self.k = k

    def entry(self):
        return self.helper() + self.local()

    def local(self):
        return self.k


def build():
    return Child(2).entry()
