"""Fixture package: a deliberately racy backend task and the drivers
that submit it.  Lint fodder for RACE001/RACE002 — and, imported at
runtime, the proof that the race the linter flags actually changes the
numbers under the thread backend (``tests/test_analysis_race.py``).
"""
