"""Submit sites for the race fixtures: one per RACE002 problem class
(lambda, nested function, bound method), plus the racy and clean
module-level tasks for RACE001's positive and negative cases."""

from .tasks import clean_sum_task, racy_sum_task


class RacyDriver:
    def __init__(self, backend):
        self._backend = backend

    def run_racy(self, args_by_worker):
        return self._backend.map_partitions(racy_sum_task, args_by_worker)

    def run_clean(self, args_by_worker):
        return self._backend.map_partitions(clean_sum_task, args_by_worker)

    def run_lambda(self, args_by_worker):
        return self._backend.map_partitions(
            lambda part: float(sum(part)), args_by_worker)

    def run_nested(self, args_by_worker):
        def local_task(part):
            return float(sum(part))
        return self._backend.map_partitions(local_task, args_by_worker)

    def run_bound(self, args_by_worker):
        return self._backend.map_partitions(self._bound_task, args_by_worker)

    def _bound_task(self, part):
        return float(sum(part))
