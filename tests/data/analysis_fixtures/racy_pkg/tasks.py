"""Task functions for the race fixtures.

``racy_sum_task`` violates the backend contract on purpose: it
accumulates into a module-level list, so the value each call returns
depends on how many *other* calls have already appended — i.e. on
scheduling.  The optional barrier makes the divergence deterministic in
tests (both threads append before either sums) instead of depending on
pool timing.
"""

_ACC = []


def reset():
    del _ACC[:]


def racy_sum_task(partition, barrier=None):
    _ACC.append(float(sum(partition)))
    if barrier is not None:
        barrier.wait()
    return float(sum(_ACC))


def clean_sum_task(partition):
    return float(sum(partition))
