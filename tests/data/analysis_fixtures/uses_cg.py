"""Top-level module resolving a call through cg_pkg's __init__
re-export chain."""

from cg_pkg import ping


def call_through_reexport():
    return ping(3)
