"""Regenerate tests/data/golden_convergence.json.

Run from the repo root with the *known-good* tree checked out::

    PYTHONPATH=src python tests/data/make_golden.py

The stored values pin the exact numerics and simulated clocks of a tiny
fixed-seed run per system; the golden regression test compares fresh runs
against them so perf/refactor PRs cannot silently change either.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.cluster import cluster1
from repro.core import (MLlibModelAveragingTrainer, MLlibStarTrainer,
                        MLlibTrainer, SparkMlStarTrainer, SparkMlTrainer,
                        TrainerConfig)
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.ps import (AngelTrainer, AsyncSgdTrainer, PetuumStarTrainer,
                      PetuumTrainer)

GOLDEN_PATH = Path(__file__).parent / "golden_convergence.json"

#: Systems pinned by the golden test.  spark.ml / spark.ml* use squared
#: loss (L-BFGS needs a smooth objective); everything else runs the
#: paper's hinge + L2 workload.
SYSTEMS = {
    "MLlib": (MLlibTrainer, "hinge"),
    "MLlib+MA": (MLlibModelAveragingTrainer, "hinge"),
    "MLlib*": (MLlibStarTrainer, "hinge"),
    "Petuum": (PetuumTrainer, "hinge"),
    "Petuum*": (PetuumStarTrainer, "hinge"),
    "Angel": (AngelTrainer, "hinge"),
    "ASGD": (AsyncSgdTrainer, "hinge"),
    "spark.ml": (SparkMlTrainer, "squared"),
    "spark.ml*": (SparkMlStarTrainer, "squared"),
}


def golden_workload():
    dataset = generate(SyntheticSpec(n_rows=400, n_features=48,
                                     nnz_per_row=8.0, noise=0.02, seed=17),
                       name="golden")
    cluster = cluster1(executors=4)
    config = TrainerConfig(max_steps=5, learning_rate=0.3,
                           lr_schedule="inv_sqrt", batch_fraction=0.25,
                           local_chunk_size=16, seed=3)
    return dataset, cluster, config


def run_system(name: str):
    trainer_cls, loss = SYSTEMS[name]
    dataset, cluster, config = golden_workload()
    objective = Objective(loss, "l2", 0.1)
    result = trainer_cls(objective, cluster, config).fit(dataset)
    return {
        "final_objective": result.final_objective,
        "total_seconds": result.history.total_seconds,
        "total_steps": result.history.total_steps,
    }


def main() -> None:
    golden = {name: run_system(name) for name in SYSTEMS}
    GOLDEN_PATH.write_text(json.dumps(golden, indent=2, sort_keys=True)
                           + "\n")
    print(f"wrote {GOLDEN_PATH}")
    for name, vals in golden.items():
        print(f"  {name:10s} f={vals['final_objective']:.12g} "
              f"t={vals['total_seconds']:.12g}")


if __name__ == "__main__":
    main()
