"""Regenerate the committed tiny serving fixtures.

Run from the repo root::

    PYTHONPATH=src python tests/data/make_tiny_artifact.py

Produces ``tests/data/tiny.libsvm`` (a 24x10 synthetic dataset) and
``tests/data/tiny_model.npz`` (an MLlib* model trained on it for two
steps).  CI's smoke job scores the dataset with the artifact via
``python -m repro predict``; ``tests/test_serve_registry.py`` asserts
the committed artifact still loads and predicts.
"""

from __future__ import annotations

from pathlib import Path

from repro.cluster import cluster1
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate, write_libsvm
from repro.glm import Objective

DATA_DIR = Path(__file__).parent
LIBSVM_PATH = DATA_DIR / "tiny.libsvm"
MODEL_PATH = DATA_DIR / "tiny_model.npz"


def main() -> None:
    dataset = generate(SyntheticSpec(n_rows=24, n_features=10,
                                     nnz_per_row=4.0, noise=0.05, seed=7),
                       name="tiny")
    write_libsvm(dataset, LIBSVM_PATH)
    config = TrainerConfig(max_steps=2, learning_rate=0.5,
                           lr_schedule="inv_sqrt", local_chunk_size=8,
                           seed=1)
    result = MLlibStarTrainer(Objective("hinge", "l2", 0.1),
                              cluster1(executors=2), config).fit(dataset)
    path = result.model.save(MODEL_PATH, provenance={
        "system": "MLlib*", "dataset": "tiny", "steps": 2,
        "generator": "tests/data/make_tiny_artifact.py"})
    acc = result.model.accuracy(dataset.X, dataset.y)
    print(f"wrote {LIBSVM_PATH}")
    print(f"wrote {path} (training accuracy {acc:.3f})")


if __name__ == "__main__":
    main()
