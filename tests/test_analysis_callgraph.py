"""Call-graph construction tests (``repro.analysis.callgraph``).

The fixture packages under ``tests/data/analysis_fixtures/`` exercise
the resolution features the graph-scoped rules depend on: import cycles,
aliased and relative imports, package ``__init__`` re-exports, method
resolution through project-defined bases, and backend submit-site
discovery.  The speed smoke at the bottom is the CI budget for keeping
whole-tree analysis cheap.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis import CallGraph, module_name_for, run_analysis
from repro.analysis.engine import collect_files, load_source

FIXTURES = Path(__file__).resolve().parent / "data" / "analysis_fixtures"
REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def build_graph(*paths: Path) -> CallGraph:
    files = [load_source(p) for p in collect_files(paths)]
    return CallGraph(files)


# ----------------------------------------------------------------------
# module naming
# ----------------------------------------------------------------------
def test_module_name_follows_init_chain():
    assert module_name_for(FIXTURES / "cg_pkg" / "alpha.py") == "cg_pkg.alpha"
    assert module_name_for(FIXTURES / "cg_pkg" / "__init__.py") == "cg_pkg"
    # analysis_fixtures/ has no __init__.py, so the package root is cg_pkg
    # and a sibling bare file is just its stem.
    assert module_name_for(FIXTURES / "uses_cg.py") == "uses_cg"
    assert module_name_for(REPO_SRC / "engine" / "backend.py") == \
        "repro.engine.backend"


# ----------------------------------------------------------------------
# edges: cycles, aliases, re-exports, methods
# ----------------------------------------------------------------------
def test_cycle_resolves_and_reachability_terminates():
    graph = build_graph(FIXTURES / "cg_pkg")
    edges = {callee for callee, _ in graph.calls["cg_pkg.alpha.ping"]}
    assert "cg_pkg.beta.pong" in edges  # via the aliased module import
    back = {callee for callee, _ in graph.calls["cg_pkg.beta.pong"]}
    assert "cg_pkg.alpha.ping" in back  # via the aliased from-import
    reach = graph.reachable(["cg_pkg.alpha.ping"])
    assert set(reach) >= {"cg_pkg.alpha.ping", "cg_pkg.beta.pong"}
    # Shortest path back around the cycle, not an infinite unrolling.
    assert reach["cg_pkg.beta.pong"] == ("cg_pkg.alpha.ping",
                                         "cg_pkg.beta.pong")


def test_reexport_through_package_init():
    graph = build_graph(FIXTURES / "cg_pkg", FIXTURES / "uses_cg.py")
    edges = {callee for callee, _
             in graph.calls["uses_cg.call_through_reexport"]}
    assert "cg_pkg.alpha.ping" in edges


def test_method_resolution_through_project_base():
    graph = build_graph(FIXTURES / "cg_pkg")
    edges = {callee for callee, _
             in graph.calls["cg_pkg.klass.Child.entry"]}
    assert edges == {"cg_pkg.klass.Base.helper", "cg_pkg.klass.Child.local"}


def test_instantiation_routes_to_init():
    graph = build_graph(FIXTURES / "cg_pkg")
    edges = {callee for callee, _ in graph.calls["cg_pkg.klass.build"]}
    assert "cg_pkg.klass.Child.__init__" in edges


def test_unresolvable_calls_produce_no_edge():
    # `Child(2).entry()` — a method on an arbitrary expression — must not
    # be guessed; unsound-but-precise means no invented edges.
    graph = build_graph(FIXTURES / "cg_pkg")
    edges = {callee for callee, _ in graph.calls["cg_pkg.klass.build"]}
    assert "cg_pkg.klass.Child.entry" not in edges


# ----------------------------------------------------------------------
# backend submit sites
# ----------------------------------------------------------------------
def test_submit_site_discovery_and_classification():
    graph = build_graph(FIXTURES / "racy_pkg")
    sites = {s.caller.qualname.rsplit(".", 1)[-1]: s
             for s in graph.submit_sites()}
    assert sites["run_racy"].task == "racy_pkg.tasks.racy_sum_task"
    assert sites["run_racy"].problem is None
    assert sites["run_clean"].task == "racy_pkg.tasks.clean_sum_task"
    assert "lambda" in sites["run_lambda"].problem
    assert "nested" in sites["run_nested"].problem
    assert "bound method" in sites["run_bound"].problem
    tasks = graph.task_functions()
    # The nested function is a task root too — it still *runs* on the
    # backend (RACE002 flags the submission separately).
    assert set(tasks) == {
        "racy_pkg.tasks.racy_sum_task",
        "racy_pkg.tasks.clean_sum_task",
        "racy_pkg.driver.RacyDriver.run_nested.<locals>.local_task",
    }


def test_repo_tree_submit_sites_resolve_worker_tasks():
    # On the real tree the derived scope must find the worker tasks the
    # old linter listed by filename.
    graph = build_graph(REPO_SRC)
    tasks = set(graph.task_functions())
    assert "repro.core.worker.send_model_task" in tasks
    assert "repro.core.worker.gradient_wave_task" in tasks


# ----------------------------------------------------------------------
# CI speed budget
# ----------------------------------------------------------------------
def test_full_tree_analysis_under_ten_seconds():
    start = time.perf_counter()
    result = run_analysis([REPO_SRC])
    elapsed = time.perf_counter() - start
    assert result.files_checked > 50
    assert elapsed < 10.0, (f"full-tree analysis took {elapsed:.1f}s; "
                            "the call graph must stay cheap")
