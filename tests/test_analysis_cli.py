"""End-to-end tests for ``python -m repro.analysis``."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.cli import main

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

BAD_SOURCE = "import time\n\nstarted = time.time()\n"


def test_clean_tree_exits_zero(capsys):
    assert main([str(REPO_SRC)]) == 0
    out = capsys.readouterr().out
    assert "0 violations" in out


def test_violations_exit_nonzero_with_location(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    assert main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert f"{bad}:3:" in out
    assert "DET001" in out


def test_json_reporter(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    assert main([str(bad), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["counts_by_rule"] == {"DET001": 1}
    [violation] = payload["violations"]
    assert violation["rule"] == "DET001"
    assert violation["line"] == 3


def test_select_restricts_rules(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    assert main([str(bad), "--select", "DET002,PURE001"]) == 0
    assert "DET001" not in capsys.readouterr().out.split("[rules:")[0]


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    (tmp_path / "ok.py").write_text("x = 1\n")
    assert main([str(tmp_path), "--select", "NOPE001"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "absent")]) == 2
    assert "absent" in capsys.readouterr().err


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("DET001", "DET002", "PURE001", "CFG001",
                    "RACE001", "RACE002", "NOQA001"):
        assert rule_id in out


def test_sarif_reporter(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(BAD_SOURCE)
    assert main([str(bad), "--format", "sarif"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["version"] == "2.1.0"
    [run] = document["runs"]
    assert run["tool"]["driver"]["name"] == "repro.analysis"
    rule_ids = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert "DET001" in rule_ids
    [finding] = run["results"]
    assert finding["ruleId"] == "DET001"
    location = finding["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"].endswith("bad.py")
    assert location["region"]["startLine"] == 3


def test_sarif_includes_suppressed_as_dismissed(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nt = time.time()  # repro: noqa[DET001]\n")
    assert main([str(bad), "--format", "sarif"]) == 0
    [run] = json.loads(capsys.readouterr().out)["runs"]
    [finding] = run["results"]
    assert finding["ruleId"] == "DET001"
    assert finding["suppressions"][0]["kind"] == "inSource"


def test_no_unused_noqa_flag(tmp_path, capsys):
    quiet = tmp_path / "quiet.py"
    quiet.write_text("x = 1  # repro: noqa[DET001]\n")
    assert main([str(quiet)]) == 1
    assert "NOQA001 unused suppression" in capsys.readouterr().out
    assert main([str(quiet), "--no-unused-noqa"]) == 0
    assert "NOQA001 unused suppression" not in capsys.readouterr().out
