"""RACE-family rule tests plus the runtime proof of the race.

The fixture package ``tests/data/analysis_fixtures/racy_pkg`` defines a
task that mutates a module-level accumulator.  These tests assert the
static side (RACE001 flags it, RACE002 flags unpicklable submissions,
the pre-call-graph rules all passed it) and the dynamic side: run under
the real ``ThreadBackend``, the flagged task actually returns different
numbers than serial — deterministically, thanks to a barrier that forces
the interleaving the linter warns about.
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

from repro.analysis import run_analysis
from repro.engine.backend import SerialBackend, ThreadBackend

FIXTURES = Path(__file__).resolve().parent / "data" / "analysis_fixtures"
RACY = FIXTURES / "racy_pkg"

if str(FIXTURES) not in sys.path:
    sys.path.insert(0, str(FIXTURES))

from racy_pkg import tasks  # noqa: E402


# ----------------------------------------------------------------------
# static: RACE001 / RACE002 on the fixtures
# ----------------------------------------------------------------------
def test_race001_flags_module_accumulator_mutation():
    result = run_analysis([RACY])
    race = [v for v in result.violations if v.rule == "RACE001"]
    assert len(race) == 1
    assert race[0].path.name == "tasks.py"
    assert ".append() on module global '_ACC'" in race[0].message \
        or "_ACC" in race[0].message
    assert "racy_sum_task" in race[0].message
    assert "pass state via arguments" in race[0].message


def test_race001_clean_task_not_flagged():
    result = run_analysis([RACY])
    race = [v for v in result.violations if v.rule == "RACE001"]
    assert all("clean_sum_task" not in v.message for v in race)


def test_race002_flags_each_unpicklable_submission():
    result = run_analysis([RACY])
    race = [v for v in result.violations if v.rule == "RACE002"]
    assert len(race) == 3
    assert all(v.path.name == "driver.py" for v in race)
    blob = " ".join(v.message for v in race)
    assert "lambda" in blob
    assert "nested" in blob
    assert "bound method" in blob


def test_old_rules_passed_the_racy_task():
    # The acceptance criterion: before the call graph, nothing flagged
    # this task — the first-generation rule set exits clean on it.
    result = run_analysis([RACY],
                          select=["DET001", "DET002", "PURE001", "CFG001"])
    assert result.violations == []


def test_race001_respects_noqa(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "tasks.py").write_text(
        "_ACC = []\n\n\n"
        "def racy_task(part):\n"
        "    _ACC.append(float(sum(part)))  # repro: noqa[RACE001]\n"
        "    return float(sum(_ACC))\n")
    (pkg / "driver.py").write_text(
        "from .tasks import racy_task\n\n\n"
        "class Driver:\n"
        "    def run(self, backend, args):\n"
        "        return backend.map_partitions(racy_task, args)\n")
    result = run_analysis([pkg])
    assert result.violations == []
    assert [v.rule for v in result.suppressed] == ["RACE001"]


def test_race001_reports_mutation_reached_through_helper(tmp_path):
    # The mutation sits one call away from the task; the diagnostic
    # names the path from the task to the mutating helper.
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "tasks.py").write_text(
        "_LOG = []\n\n\n"
        "def _note(x):\n"
        "    _LOG.append(x)\n\n\n"
        "def task(part):\n"
        "    _note(len(part))\n"
        "    return float(sum(part))\n")
    (pkg / "driver.py").write_text(
        "from .tasks import task\n\n\n"
        "class Driver:\n"
        "    def run(self, backend, args):\n"
        "        return backend.map_partitions(task, args)\n")
    result = run_analysis([pkg])
    race = [v for v in result.violations if v.rule == "RACE001"]
    assert len(race) == 1
    assert race[0].path.name == "tasks.py"
    assert race[0].line == 5  # the append inside the helper
    assert "task -> _note" in race[0].message


# ----------------------------------------------------------------------
# dynamic: the flagged race really changes the numbers
# ----------------------------------------------------------------------
def test_racy_task_diverges_from_serial_under_threads():
    partitions = [[1.0], [2.0]]

    tasks.reset()
    serial = SerialBackend()
    serial.install_partitions(partitions)
    try:
        serial_out = serial.map_partitions(tasks.racy_sum_task,
                                           [(None,), (None,)])
    finally:
        serial.close()
    # Serial sees prefix sums: the second call observes the first append.
    assert serial_out == [1.0, 3.0]

    tasks.reset()
    threads = ThreadBackend(max_workers=2)
    threads.install_partitions(partitions)
    barrier = threading.Barrier(2)
    try:
        thread_out = threads.map_partitions(tasks.racy_sum_task,
                                            [(barrier,), (barrier,)])
    finally:
        threads.close()
        tasks.reset()
    # Both threads append before either sums — the interleaving RACE001
    # warns about — and the numbers silently differ from serial.
    assert thread_out == [3.0, 3.0]
    assert thread_out != serial_out


def test_clean_task_is_backend_invariant():
    partitions = [[1.0], [2.0]]
    serial = SerialBackend()
    serial.install_partitions(partitions)
    try:
        serial_out = serial.map_partitions(tasks.clean_sum_task, [(), ()])
    finally:
        serial.close()
    threads = ThreadBackend(max_workers=2)
    threads.install_partitions(partitions)
    try:
        thread_out = threads.map_partitions(tasks.clean_sum_task, [(), ()])
    finally:
        threads.close()
    assert serial_out == thread_out == [1.0, 2.0]
