"""Per-rule fixtures for the determinism linter (``repro.analysis``).

Every rule gets three fixtures: a violating snippet, a clean snippet, and
a violating snippet whose diagnostic is silenced with an inline
``# repro: noqa[RULE]`` suppression.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import (PARSE_RULE_ID, parse_noqa, rule_registry,
                            run_analysis)

ALL_IDS = {"DET001", "DET002", "PURE001", "CFG001",
           "RACE001", "RACE002", "NOQA001"}


def lint(tmp_path: Path, name: str, source: str, **kwargs):
    """Write ``source`` to ``tmp_path/name`` and lint that one file."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_analysis([path], **kwargs)


def rules_hit(result) -> set[str]:
    return {v.rule for v in result.violations}


# ----------------------------------------------------------------------
# registry basics
# ----------------------------------------------------------------------
def test_registry_exposes_all_rules():
    assert set(rule_registry()) == ALL_IDS


def test_syntax_error_reports_syn001(tmp_path):
    result = lint(tmp_path, "broken.py", "def f(:\n    pass\n")
    assert [v.rule for v in result.violations] == [PARSE_RULE_ID]
    assert result.exit_code == 1


# ----------------------------------------------------------------------
# DET001: ambient nondeterminism
# ----------------------------------------------------------------------
DET001_BAD = """\
import random
import time
import numpy as np
from datetime import datetime


def sample():
    x = random.random()
    np.random.seed(0)
    rng = np.random.default_rng()
    legacy = np.random.randn(3)
    started = time.time()
    stamp = datetime.now()
    return x, rng, legacy, started, stamp
"""

DET001_CLEAN = """\
import numpy as np


def make_streams(seed, k):
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(s) for s in root.spawn(k)]


def sample(rng: np.random.Generator):
    return rng.normal(size=3)
"""


def test_det001_flags_every_ambient_source(tmp_path):
    result = lint(tmp_path, "bad.py", DET001_BAD)
    det = [v for v in result.violations if v.rule == "DET001"]
    # random.random, np.random.seed, argless default_rng, legacy randn,
    # time.time, datetime.now — six distinct diagnostics.
    assert len(det) == 6
    lines = {v.line for v in det}
    assert lines == {8, 9, 10, 11, 12, 13}


def test_det001_clean_seeded_generators_pass(tmp_path):
    result = lint(tmp_path, "clean.py", DET001_CLEAN)
    assert result.violations == []
    assert result.ok


def test_det001_noqa_suppresses(tmp_path):
    src = "import time\nstarted = time.time()  # repro: noqa[DET001]\n"
    result = lint(tmp_path, "timed.py", src)
    assert result.violations == []
    assert [v.rule for v in result.suppressed] == ["DET001"]


def test_det001_unrelated_modules_not_flagged(tmp_path):
    # A local function *named* random is not the stdlib module.
    src = "def random():\n    return 4\n\n\nvalue = random()\n"
    result = lint(tmp_path, "local.py", src)
    assert result.violations == []


# ----------------------------------------------------------------------
# DET002: unordered iteration feeding accumulation
# ----------------------------------------------------------------------
DET002_BAD = """\
def total(parts):
    acc = 0.0
    for p in {1.5, 2.5, 3.5}:
        acc += p
    return acc


def flatten(items):
    return [x for x in set(items)]
"""

DET002_CLEAN = """\
def total(parts):
    acc = 0.0
    for p in sorted({1.5, 2.5, 3.5}):
        acc += p
    return acc


def flatten(items):
    return [x for x in sorted(set(items))]
"""


def test_det002_flags_set_iteration_in_scoped_paths(tmp_path):
    result = lint(tmp_path, "ps/loop.py", DET002_BAD)
    det = [v for v in result.violations if v.rule == "DET002"]
    assert len(det) == 2


def test_det002_applies_to_collectives_and_ps_roots(tmp_path):
    # Functions living under an aggregation package are scope roots.
    assert "DET002" in rules_hit(
        lint(tmp_path, "collectives/reduce.py", DET002_BAD))
    assert "DET002" in rules_hit(lint(tmp_path, "ps/server.py", DET002_BAD))


def test_det002_scope_is_reachability_not_filename(tmp_path):
    # The same helper module is out of scope on its own...
    helper = ("def merge(parts):\n"
              "    out = 0.0\n"
              "    for p in set(parts):\n"
              "        out += p\n"
              "    return out\n")
    alone = lint(tmp_path / "alone", "helpers.py", helper)
    assert "DET002" not in rules_hit(alone)

    # ...but in scope once a collective combine entry point calls it —
    # no filename list to extend, the call graph derives the scope.
    proj = tmp_path / "proj"
    (proj / "collectives").mkdir(parents=True)
    (proj / "collectives" / "__init__.py").write_text("")
    (proj / "collectives" / "reduce.py").write_text(
        "from helpers import merge\n\n\n"
        "def combine(parts):\n"
        "    return merge(parts)\n")
    (proj / "helpers.py").write_text(helper)
    result = run_analysis([proj])
    det = [v for v in result.violations if v.rule == "DET002"]
    assert len(det) == 1
    assert det[0].path.name == "helpers.py"
    assert "reachable via" in det[0].message
    assert "combine" in det[0].message


def test_det002_ignores_files_outside_scope(tmp_path):
    # The same source in an unscoped module is not DET002's business.
    result = lint(tmp_path, "viz/plotting.py", DET002_BAD)
    assert "DET002" not in rules_hit(result)


def test_det002_sorted_iteration_is_clean(tmp_path):
    result = lint(tmp_path, "ps/loop.py", DET002_CLEAN)
    assert result.violations == []


def test_det002_noqa_suppresses(tmp_path):
    src = ("def f(xs):\n"
           "    out = 0.0\n"
           "    for x in set(xs):  # repro: noqa[DET002]\n"
           "        out += x\n"
           "    return out\n")
    result = lint(tmp_path, "ps/ok.py", src)
    assert result.violations == []
    assert [v.rule for v in result.suppressed] == ["DET002"]


# ----------------------------------------------------------------------
# DET001/PURE001 perf exemption: repro/perf/ is the one place allowed to
# read the wall clock (it measures the simulation, never the simulated
# cluster) — by rule scope, not by noqa comments.
# ----------------------------------------------------------------------
PERF_TIMER = """\
import time


def measure(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start
"""


def test_det001_allows_wall_clock_under_perf(tmp_path):
    result = lint(tmp_path, "perf/profiler.py", PERF_TIMER)
    assert result.violations == []


def test_det001_still_flags_rng_under_perf(tmp_path):
    # Only the wall-clock/date names are exempt; unseeded RNG in a perf
    # module is as nondeterministic as anywhere else.
    src = ("import numpy as np\n"
           "import time\n"
           "start = time.time()\n"
           "rng = np.random.default_rng()\n")
    result = lint(tmp_path, "perf/harness.py", src)
    det = [v for v in result.violations if v.rule == "DET001"]
    assert len(det) == 1
    assert det[0].line == 4


def test_det001_flags_wall_clock_outside_perf(tmp_path):
    result = lint(tmp_path, "cluster/cost.py", PERF_TIMER)
    det = [v for v in result.violations if v.rule == "DET001"]
    assert len(det) == 2


def test_det002_covers_backend_task_functions(tmp_path):
    # A function handed to a backend submit site is a DET002 root even
    # though it lives nowhere near collectives/ or ps/.
    (tmp_path / "worker.py").write_text(
        "def fold_task(parts):\n"
        "    acc = 0.0\n"
        "    for p in set(parts):\n"
        "        acc += p\n"
        "    return acc\n")
    (tmp_path / "driver.py").write_text(
        "from worker import fold_task\n\n\n"
        "class Trainer:\n"
        "    def step(self, parts):\n"
        "        return self._backend.map_partitions(fold_task, parts)\n")
    result = run_analysis([tmp_path])
    det = [v for v in result.violations if v.rule == "DET002"]
    assert len(det) == 1
    assert det[0].path.name == "worker.py"


# ----------------------------------------------------------------------
# PURE001: cost-model pricing functions must not mutate state
# ----------------------------------------------------------------------
PURE001_BAD = """\
class CostModel:
    def __init__(self):
        self.calls = 0
        self.log = []

    def seconds(self, n):
        self.calls += 1
        return n * 0.1

    def comm_seconds(self, n):
        self.log.append(n)
        return n * 0.2
"""

PURE001_CLEAN = """\
class CostModel:
    def seconds(self, n):
        return n * 0.1

    def comm_seconds(self, n):
        scale = 0.2
        return n * scale


def fan_in_seconds(k, payload):
    total = 0.0
    for _ in range(k):
        total += payload
    return total
"""


def test_pure001_flags_self_mutation(tmp_path):
    result = lint(tmp_path, "cost.py", PURE001_BAD)
    pure = [v for v in result.violations if v.rule == "PURE001"]
    assert len(pure) == 2  # the AugAssign and the .append call


def test_pure001_clean_pricing_passes(tmp_path):
    result = lint(tmp_path, "cost.py", PURE001_CLEAN)
    assert result.violations == []


def test_pure001_ignores_non_pricing_methods(tmp_path):
    src = ("class Engine:\n"
           "    def advance(self, dt):\n"
           "        self.now += dt\n")
    result = lint(tmp_path, "engine.py", src)
    assert result.violations == []


def test_pure001_skips_perf_paths(tmp_path):
    # The profiler's accumulating phase timers look like impure "seconds"
    # methods; PURE001 polices cost models, not measurement.
    result = lint(tmp_path, "perf/profiler.py", PURE001_BAD)
    assert "PURE001" not in rules_hit(result)


def test_pure001_valueless_annassign_is_not_an_assignment(tmp_path):
    # `self.calls: int` declares a type, assigns nothing — only the
    # annotated assignment with a value is impure.
    src = ("class CostModel:\n"
           "    def seconds(self, n):\n"
           "        self.calls: int\n"
           "        self.total: float = n\n"
           "        return n * 0.1\n")
    result = lint(tmp_path, "cost.py", src)
    pure = [v for v in result.violations if v.rule == "PURE001"]
    assert len(pure) == 1
    assert pure[0].line == 4


PURE001_INDIRECT = """\
class CostModel:
    def __init__(self):
        self.log = []

    def seconds(self, n):
        return self._base(n) * 0.1

    def _base(self, n):
        self.log.append(n)
        return n
"""


def test_pure001_follows_calls_to_impure_helpers(tmp_path):
    result = lint(tmp_path, "cost.py", PURE001_INDIRECT)
    pure = [v for v in result.violations if v.rule == "PURE001"]
    assert len(pure) == 1
    # Flagged at the call site inside the pricing function, naming the
    # path to the offending mutation.
    assert pure[0].line == 6
    assert "CostModel.seconds -> CostModel._base" in pure[0].message
    assert "pricing must stay pure" in pure[0].message


def test_pure001_follows_module_function_chains(tmp_path):
    src = ("import time\n"
           "\n\n"
           "def _stamp():\n"
           "    return time.time()\n"
           "\n\n"
           "def _chain(n):\n"
           "    return _stamp() + n\n"
           "\n\n"
           "def link_seconds(n):\n"
           "    return _chain(n) * 2.0\n")
    result = lint(tmp_path, "cost.py", src)
    pure = [v for v in result.violations if v.rule == "PURE001"]
    assert len(pure) == 1
    assert pure[0].line == 13
    assert "link_seconds -> _chain -> _stamp" in pure[0].message


def test_pure001_interprocedural_ignores_pure_helpers(tmp_path):
    src = ("def _scale(n):\n"
           "    factor = 2.0\n"
           "    return n * factor\n"
           "\n\n"
           "def fan_seconds(n):\n"
           "    return _scale(n) + 1.0\n")
    result = lint(tmp_path, "cost.py", src)
    assert "PURE001" not in rules_hit(result)


def test_pure001_interprocedural_perf_helpers_exempt(tmp_path):
    # A pricing function may call into perf/ instrumentation — the perf
    # tree is exempt wall-clock territory, same as intraprocedurally.
    proj = tmp_path / "proj"
    (proj / "perf").mkdir(parents=True)
    (proj / "perf" / "__init__.py").write_text("")
    (proj / "perf" / "timers.py").write_text(
        "import time\n\n\ndef stamp():\n    return time.time()\n")
    (proj / "cost.py").write_text(
        "from perf.timers import stamp\n\n\n"
        "def run_seconds(n):\n"
        "    return stamp() * 0.0 + n\n")
    result = run_analysis([proj])
    assert "PURE001" not in rules_hit(result)


def test_pure001_noqa_suppresses(tmp_path):
    src = ("class CostModel:\n"
           "    def seconds(self, n):\n"
           "        self.calls += 1  # repro: noqa[PURE001]\n"
           "        return n * 0.1\n")
    result = lint(tmp_path, "cost.py", src)
    assert result.violations == []
    assert [v.rule for v in result.suppressed] == ["PURE001"]


# ----------------------------------------------------------------------
# CFG001: TrainerConfig fields must be reachable from the CLI
# ----------------------------------------------------------------------
CFG_CONFIG = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class TrainerConfig:
    max_steps: int = 10
    learning_rate: float = 0.1
    hidden_knob: float = 0.5
"""

CFG_CLI = """\
def make_config(args):
    return dict(max_steps=args.steps, learning_rate=args.lr)
"""


def _write_cfg_project(tmp_path, config_src, cli_src):
    (tmp_path / "config.py").write_text(config_src)
    (tmp_path / "cli.py").write_text(cli_src)
    return run_analysis([tmp_path], select=["CFG001"])


def test_cfg001_flags_unreachable_field(tmp_path):
    result = _write_cfg_project(tmp_path, CFG_CONFIG, CFG_CLI)
    assert [v.rule for v in result.violations] == ["CFG001"]
    assert "hidden_knob" in result.violations[0].message


def test_cfg001_clean_when_every_field_wired(tmp_path):
    cli = ("def make_config(args):\n"
           "    return dict(max_steps=args.steps, learning_rate=args.lr,\n"
           "                hidden_knob=args.knob)\n")
    result = _write_cfg_project(tmp_path, CFG_CONFIG, cli)
    assert result.violations == []


def test_cfg001_string_subscript_counts_as_reachable(tmp_path):
    cli = ("def make_config(args, overrides):\n"
           "    overrides['hidden_knob'] = 1.0\n"
           "    return dict(max_steps=1, learning_rate=0.1)\n")
    result = _write_cfg_project(tmp_path, CFG_CONFIG, cli)
    assert result.violations == []


def test_cfg001_noqa_on_field_line_suppresses(tmp_path):
    config = CFG_CONFIG.replace(
        "hidden_knob: float = 0.5",
        "hidden_knob: float = 0.5  # repro: noqa[CFG001]")
    result = _write_cfg_project(tmp_path, config, CFG_CLI)
    assert result.violations == []
    assert [v.rule for v in result.suppressed] == ["CFG001"]


def test_cfg001_covers_serve_config_too(tmp_path):
    config = ("from dataclasses import dataclass\n"
              "\n\n"
              "@dataclass(frozen=True)\n"
              "class ServeConfig:\n"
              "    max_batch: int = 32\n"
              "    secret_knob: int = 1\n")
    cli = ("def make_serve(args):\n"
           "    return dict(max_batch=args.serve_max_batch)\n")
    result = _write_cfg_project(tmp_path, config, cli)
    assert [v.rule for v in result.violations] == ["CFG001"]
    assert "ServeConfig.secret_knob" in result.violations[0].message


def test_cfg001_checks_every_config_class(tmp_path):
    # one wired class does not excuse another class's unwired field
    config = (CFG_CONFIG
              + "\n\n@dataclass(frozen=True)\n"
                "class ServeConfig:\n"
                "    workers: int = 2\n")
    cli = ("def make(args):\n"
           "    return dict(max_steps=1, learning_rate=0.1,\n"
           "                hidden_knob=2.0, workers=args.w)\n")
    result = _write_cfg_project(tmp_path, config, cli)
    assert result.violations == []


def test_cfg001_silent_without_config_class(tmp_path):
    (tmp_path / "misc.py").write_text("x = 1\n")
    result = run_analysis([tmp_path], select=["CFG001"])
    assert result.violations == []


# ----------------------------------------------------------------------
# suppression machinery
# ----------------------------------------------------------------------
def test_parse_noqa_forms():
    text = ("a = 1  # repro: noqa[DET001]\n"
            "b = 2  # repro: noqa[DET001, PURE001]\n"
            "c = 3  # repro: noqa\n"
            "d = 4  # noqa\n")
    noqa = parse_noqa(text)
    assert noqa[1] == frozenset({"DET001"})
    assert noqa[2] == frozenset({"DET001", "PURE001"})
    assert noqa[3] == frozenset({"*"})  # bare form silences every rule
    assert 4 not in noqa  # plain flake8 noqa is not ours


def test_noqa_for_other_rule_does_not_suppress(tmp_path):
    src = "import time\nstarted = time.time()  # repro: noqa[DET002]\n"
    result = lint(tmp_path, "timed.py", src)
    # The DET001 diagnostic survives, and NOQA001 points out that the
    # DET002 suppression silenced nothing.
    assert [v.rule for v in result.violations] == ["DET001", "NOQA001"]
    quiet = lint(tmp_path, "timed.py", src, unused_noqa=False)
    assert [v.rule for v in quiet.violations] == ["DET001"]


def test_rule_selection_and_ignore(tmp_path):
    path = tmp_path / "bad.py"
    path.write_text(DET001_BAD)
    only = run_analysis([path], select=["DET001"])
    assert only.rules_run == ("DET001",)
    ignored = run_analysis([path], ignore=["DET001"])
    assert ignored.violations == []


# ----------------------------------------------------------------------
# NOQA001: suppressions must suppress something
# ----------------------------------------------------------------------
def test_noqa001_used_suppression_is_silent(tmp_path):
    src = "import time\nstarted = time.time()  # repro: noqa[DET001]\n"
    result = lint(tmp_path, "timed.py", src)
    assert result.violations == []


def test_noqa001_flags_stale_suppression(tmp_path):
    src = "x = 1  # repro: noqa[DET001]\n"
    result = lint(tmp_path, "quiet.py", src)
    assert [v.rule for v in result.violations] == ["NOQA001"]
    assert "unused suppression" in result.violations[0].message
    # The diagnostic points at the comment, not column 1.
    assert result.violations[0].col == 8


def test_noqa001_flags_unknown_rule_id(tmp_path):
    src = "x = 1  # repro: noqa[DET999]\n"
    result = lint(tmp_path, "typo.py", src)
    assert [v.rule for v in result.violations] == ["NOQA001"]
    assert "unknown rule 'DET999'" in result.violations[0].message


def test_noqa001_flags_unused_bare_noqa_on_full_runs(tmp_path):
    src = "x = 1  # repro: noqa\n"
    result = lint(tmp_path, "quiet.py", src)
    assert [v.rule for v in result.violations] == ["NOQA001"]
    # A partial run cannot judge a bare suppression (an unselected rule
    # might need it) — only full runs report it.
    partial = lint(tmp_path, "quiet.py", src, select=["DET001", "NOQA001"])
    assert partial.violations == []


def test_noqa001_opt_out(tmp_path):
    src = "x = 1  # repro: noqa[DET001]\n"
    result = lint(tmp_path, "quiet.py", src, unused_noqa=False)
    assert result.violations == []


def test_noqa001_explicit_allowlist_suppresses_the_audit(tmp_path):
    src = "x = 1  # repro: noqa[DET001, NOQA001]\n"
    result = lint(tmp_path, "quiet.py", src)
    assert result.violations == []
    assert "NOQA001" in {v.rule for v in result.suppressed}


def test_noqa001_ignores_mentions_inside_strings(tmp_path):
    src = ('DOC = """use # repro: noqa[DET001] to silence"""\n'
           "x = 1\n")
    result = lint(tmp_path, "doc.py", src)
    assert result.violations == []
