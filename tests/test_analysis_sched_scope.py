"""Linter scope extensions for the scheduler subsystem.

The scheduler's determinism contract is enforced the same way the
aggregation paths' is: ``SchedConfig`` joins the CFG001 config classes,
the ``sched`` package joins the DET002 aggregation scope, and pure
``dispatch_*`` policy functions become RACE001 roots — mutating shared
state from a dispatch decision would make two replays of the same
schedule diverge.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import run_analysis

DET002_BAD = """\
def total(parts):
    acc = 0.0
    for p in {1.5, 2.5, 3.5}:
        acc += p
    return acc
"""


def lint(tmp_path: Path, name: str, source: str, **kwargs):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    return run_analysis([path], **kwargs)


def rules_hit(result) -> set[str]:
    return {v.rule for v in result.violations}


# ----------------------------------------------------------------------
# DET002: the sched package is an aggregation scope root
# ----------------------------------------------------------------------
def test_det002_covers_sched_package(tmp_path):
    assert "DET002" in rules_hit(
        lint(tmp_path, "sched/scheduler.py", DET002_BAD))


def test_det002_reaches_helpers_called_from_sched(tmp_path):
    proj = tmp_path / "proj"
    (proj / "sched").mkdir(parents=True)
    (proj / "sched" / "__init__.py").write_text("")
    (proj / "sched" / "scheduler.py").write_text(
        "from helpers import merge\n\n\n"
        "def settle(parts):\n"
        "    return merge(parts)\n")
    (proj / "helpers.py").write_text(
        "def merge(parts):\n"
        "    out = 0.0\n"
        "    for p in set(parts):\n"
        "        out += p\n"
        "    return out\n")
    result = run_analysis([proj])
    det = [v for v in result.violations if v.rule == "DET002"]
    assert len(det) == 1
    assert det[0].path.name == "helpers.py"


# ----------------------------------------------------------------------
# RACE001: dispatch_* functions under sched/ are roots
# ----------------------------------------------------------------------
def test_race001_flags_stateful_dispatch_function(tmp_path):
    pkg = tmp_path / "sched"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "policy.py").write_text(
        "_HISTORY = []\n\n\n"
        "def dispatch_order(jobs):\n"
        "    _HISTORY.append(len(jobs))\n"
        "    return tuple(range(len(jobs)))\n")
    result = run_analysis([pkg])
    race = [v for v in result.violations if v.rule == "RACE001"]
    assert len(race) == 1
    assert "dispatch_order" in race[0].message
    assert "scheduler dispatch" in race[0].message
    assert "replays" in race[0].message


def test_race001_dispatch_root_follows_helpers(tmp_path):
    pkg = tmp_path / "sched"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "policy.py").write_text(
        "_SEEN = []\n\n\n"
        "def _note(n):\n"
        "    _SEEN.append(n)\n\n\n"
        "def dispatch_fair_shares(total, jobs):\n"
        "    _note(total)\n"
        "    return {}\n")
    result = run_analysis([pkg])
    race = [v for v in result.violations if v.rule == "RACE001"]
    assert len(race) == 1
    assert "dispatch_fair_shares -> _note" in race[0].message


def test_race001_ignores_non_dispatch_sched_functions(tmp_path):
    # Only dispatch_* names are roots; ordinary bookkeeping helpers in
    # the package are not implicitly racy.
    pkg = tmp_path / "sched"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "log.py").write_text(
        "_LINES = []\n\n\n"
        "def record(line):\n"
        "    _LINES.append(line)\n")
    result = run_analysis([pkg])
    assert "RACE001" not in rules_hit(result)


def test_race001_ignores_dispatch_names_outside_sched(tmp_path):
    # The prefix only has meaning inside the sched package.
    (tmp_path / "mailroom.py").write_text(
        "_OUTBOX = []\n\n\n"
        "def dispatch_letters(batch):\n"
        "    _OUTBOX.append(batch)\n")
    result = run_analysis([tmp_path])
    assert "RACE001" not in rules_hit(result)


def test_race001_clean_pure_dispatch_passes(tmp_path):
    pkg = tmp_path / "sched"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "policy.py").write_text(
        "def dispatch_order(jobs):\n"
        "    ranked = sorted(range(len(jobs)),\n"
        "                    key=lambda i: jobs[i].arrival)\n"
        "    return tuple(ranked)\n")
    result = run_analysis([pkg])
    assert result.violations == []


# ----------------------------------------------------------------------
# CFG001: SchedConfig fields must be reachable from the CLI
# ----------------------------------------------------------------------
SCHED_CONFIG = """\
from dataclasses import dataclass


@dataclass(frozen=True)
class SchedConfig:
    policy: str = "fifo"
    total_executors: int = 8
    secret_knob: int = 3
"""


def test_cfg001_flags_unwired_sched_config_field(tmp_path):
    (tmp_path / "config.py").write_text(SCHED_CONFIG)
    (tmp_path / "cli.py").write_text(
        "def make_sched(args):\n"
        "    return dict(policy=args.policy,\n"
        "                total_executors=args.total_executors)\n")
    result = run_analysis([tmp_path], select=["CFG001"])
    assert [v.rule for v in result.violations] == ["CFG001"]
    assert "SchedConfig.secret_knob" in result.violations[0].message


def test_cfg001_clean_when_sched_fields_wired(tmp_path):
    (tmp_path / "config.py").write_text(SCHED_CONFIG)
    (tmp_path / "cli.py").write_text(
        "def make_sched(args):\n"
        "    return dict(policy=args.policy,\n"
        "                total_executors=args.total_executors,\n"
        "                secret_knob=args.knob)\n")
    result = run_analysis([tmp_path], select=["CFG001"])
    assert result.violations == []


# ----------------------------------------------------------------------
# the real tree stays clean under the widened scope
# ----------------------------------------------------------------------
def test_repo_sched_package_is_lint_clean():
    sched = Path(__file__).resolve().parent.parent / "src" / "repro" / "sched"
    result = run_analysis([sched])
    assert result.violations == []
