"""Shared-memory + socket backends: pickle accounting, lifecycle, wire.

Regression coverage for the real-executor work:

* the process backend's **pickle-once (fork: pickle-never)** partition
  contract, pinned by counting partition pickle events;
* pool/daemon **lifecycle**: backends are context managers, and a fault
  injected mid-``fit`` still reaps every worker process;
* the **spawn** start method: the bit-identity battery CI normally runs
  only ever exercises ``fork`` — the slow suite here reruns it under
  ``spawn`` (initializer-shipped state instead of inherited state);
* :mod:`repro.engine.shm` internals (read-only views, broadcast arena,
  segment lifecycle) and the :mod:`repro.engine.wire` frame protocol;
* the measured-vs-simulated plumbing: ``trainer.last_wire_stats``
  harvest and :mod:`repro.perf.netcheck`.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import socket as socketlib
import threading

import numpy as np
import pytest
import scipy.sparse as sp

from data.make_golden import SYSTEMS, golden_workload
from repro.core import MLlibStarTrainer
from repro.data import Partition
from repro.engine import shm as shm_store
from repro.engine import wire
from repro.engine.backend import (ProcessBackend, SerialBackend, ShmBackend,
                                  SocketBackend, ThreadBackend, make_backend)
from repro.engine.shm import BroadcastRef, build_store, run_on_shm_partition
from repro.glm import Objective
from repro.perf.netcheck import fit_alpha_beta, validate_network
from test_perf_backend import _assert_matches_serial

_HAVE_FORK = "fork" in mp.get_all_start_methods()

#: Parent-side count of partition pickle events (see CountingPartition).
_PICKLES = {"count": 0}


class CountingPartition:
    """A partition stand-in whose pickling is observable.

    ``__reduce__`` bumps the module-level counter — in the *parent*
    process only, since forked/spawned children mutate their own copy of
    the module global.  That is exactly the count the pickle-once
    contract is about: how many times the parent serializes a partition
    to ship it somewhere.
    """

    def __init__(self, index: int, value: float) -> None:
        self.index = index
        self.value = value

    def __reduce__(self):
        _PICKLES["count"] += 1
        return (CountingPartition, (self.index, self.value))


def _value_task(part, offset: float) -> float:
    return part.value + offset


def _boom_task(part) -> float:
    raise ValueError("boom: injected task fault")


def _partitions(k: int = 3) -> list[Partition]:
    parts = []
    for i in range(k):
        X = sp.random(4, 6, density=0.5, format="csr",
                      random_state=np.random.RandomState(i))
        parts.append(Partition(index=i, X=X, y=np.full(4, float(i))))
    return parts


def _probe_broadcast_task(part, w) -> tuple[bool, float]:
    """Report whether the model arg arrived as a read-only view."""
    return (not w.flags.writeable, float(w.sum()))


# ----------------------------------------------------------------------
# satellite: pickle-once / pickle-never partition shipping
# ----------------------------------------------------------------------
class TestPartitionPickleAccounting:
    @pytest.mark.skipif(not _HAVE_FORK, reason="fork not available")
    def test_fork_install_never_pickles_partitions(self):
        counting = [CountingPartition(i, float(i)) for i in range(3)]
        _PICKLES["count"] = 0
        with ProcessBackend(max_workers=2, start_method="fork") as backend:
            backend.install_partitions(counting)
            for _ in range(3):
                got = backend.map_partitions(
                    _value_task, [(1.0,), (1.0,), (1.0,)])
                assert got == [1.0, 2.0, 3.0]
        assert _PICKLES["count"] == 0

    def test_spawn_install_pickles_once_per_worker_never_per_task(self):
        counting = [CountingPartition(i, float(i)) for i in range(3)]
        _PICKLES["count"] = 0
        with ProcessBackend(max_workers=1,
                            start_method="spawn") as backend:
            backend.install_partitions(counting)
            got = backend.map_partitions(_value_task,
                                         [(1.0,), (1.0,), (1.0,)])
            assert got == [1.0, 2.0, 3.0]
            # One worker was spawned; the initializer shipped the 3-item
            # partition list to it exactly once.
            after_first_round = _PICKLES["count"]
            assert after_first_round == 3
            for _ in range(3):
                backend.map_partitions(_value_task,
                                       [(0.0,), (0.0,), (0.0,)])
            # ... and NEVER again per task.
            assert _PICKLES["count"] == after_first_round


# ----------------------------------------------------------------------
# satellite: lifecycle — context managers, fault-path reaping
# ----------------------------------------------------------------------
class TestBackendLifecycle:
    def test_context_manager_closes_pool(self):
        backend = ThreadBackend()
        with backend as entered:
            assert entered is backend
            backend.install_partitions(_partitions(2))
            assert backend._pool is not None
        assert backend._pool is None

    def test_context_manager_closes_on_fault(self):
        backend = ProcessBackend(max_workers=1)
        with pytest.raises(ValueError, match="boom"):
            with backend:
                backend.install_partitions(_partitions(2))
                backend.map_partitions(_boom_task, [(), ()])
        assert backend._pool is None
        before = {p.pid for p in mp.active_children()}
        assert not any(p.name.startswith("repro-") and p.pid in before
                       for p in mp.active_children())

    def test_socket_fault_propagates_and_daemons_are_reaped(self):
        prior = {p.pid for p in mp.active_children()}
        backend = make_backend("socket")
        with pytest.raises(ValueError, match="boom"):
            with backend:
                backend.install_partitions(_partitions(2))
                assert any(p.name.startswith("repro-daemon")
                           for p in mp.active_children())
                backend.map_partitions(_boom_task, [(), ()])
        leftovers = [p for p in mp.active_children()
                     if p.pid not in prior]
        assert leftovers == []

    def test_fit_fault_reaps_workers_and_harvests_wire_stats(self):
        dataset, cluster, config = golden_workload()
        config = dataclasses.replace(config, backend="socket")
        trainer = MLlibStarTrainer(Objective("hinge", "l2", 0.1), cluster,
                                   config)
        prior = {p.pid for p in mp.active_children()}

        def exploding_step(step, w, data):
            raise RuntimeError("injected fault mid-fit")

        trainer._run_step = exploding_step
        with pytest.raises(RuntimeError, match="injected fault"):
            trainer.fit(dataset)
        # fit()'s finally closed the session: daemons reaped, the serial
        # stub reinstalled, and the wire log (the install exchange, at
        # least) harvested before teardown.
        assert [p for p in mp.active_children() if p.pid not in prior] \
            == []
        assert isinstance(trainer._backend, SerialBackend)
        assert trainer.last_wire_stats is not None
        assert trainer.last_wire_stats["install_bytes"] > 0

    def test_open_session_failure_closes_backend(self, monkeypatch):
        dataset, cluster, config = golden_workload()
        config = dataclasses.replace(config, backend="processes")
        trainer = MLlibStarTrainer(Objective("hinge", "l2", 0.1), cluster,
                                   config)
        monkeypatch.setattr(
            ProcessBackend, "install_partitions",
            lambda self, parts: (_ for _ in ()).throw(
                OSError("no processes for you")))
        prior = {p.pid for p in mp.active_children()}
        with pytest.raises(OSError, match="no processes"):
            trainer.open_session(dataset)
        assert [p for p in mp.active_children() if p.pid not in prior] \
            == []
        # The serial stub keeps post-failure introspection working.
        assert isinstance(trainer._backend, SerialBackend)


# ----------------------------------------------------------------------
# satellite: the bit-identity battery under the spawn start method
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestSpawnStartMethod:
    """CI's default battery only ever exercises ``fork`` (the preferred
    method); this suite repeats it under ``spawn``, where worker state
    travels through pool initializers instead of being inherited."""

    @pytest.fixture(autouse=True)
    def _force_spawn(self):
        for cls in (ProcessBackend, ShmBackend, SocketBackend):
            cls.default_start_method = "spawn"
        yield
        for cls in (ProcessBackend, ShmBackend, SocketBackend):
            cls.default_start_method = None

    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_processes_spawn_matches_serial(self, system):
        _assert_matches_serial(system, "processes")

    @pytest.mark.parametrize("backend", ["shm", "socket"])
    def test_shared_backends_spawn_match_serial(self, backend):
        _assert_matches_serial("MLlib*", backend)
        _assert_matches_serial("ASGD", backend)


# ----------------------------------------------------------------------
# shm internals
# ----------------------------------------------------------------------
class TestShmStore:
    def test_store_round_trips_partitions_as_readonly_views(self):
        parts = _partitions(3)
        store = build_store(parts)
        try:
            state = store.worker_state()
            assert len(state.partitions) == 3
            for original, view in zip(parts, state.partitions):
                assert np.array_equal(original.X.toarray(),
                                      view.X.toarray())
                assert np.array_equal(original.y, view.y)
                assert not view.y.flags.writeable
                with pytest.raises(ValueError):
                    view.X.data[0] = 999.0
        finally:
            store.close()

    def test_broadcast_arena_round_trip(self):
        store = build_store(_partitions(2))
        try:
            w = np.linspace(0.0, 1.0, 6)
            ref = store.write_broadcast(w)
            assert ref == BroadcastRef(length=6)
            view = store.worker_state().resolve_broadcast(ref)
            assert np.array_equal(view, w)
            assert not view.flags.writeable
        finally:
            store.close()

    def test_broadcast_overflow_raises(self):
        store = build_store(_partitions(1))
        try:
            with pytest.raises(RuntimeError, match="does not fit"):
                store.write_broadcast(np.zeros(1000))
        finally:
            store.close()

    def test_close_is_idempotent_and_guards_writes(self):
        store = build_store(_partitions(1))
        store.close()
        store.close()
        with pytest.raises(RuntimeError, match="closed"):
            store.write_broadcast(np.zeros(3))
        with pytest.raises(RuntimeError, match="closed"):
            store.worker_state()

    def test_build_store_rejects_empty(self):
        with pytest.raises(ValueError, match="no"):
            build_store([])

    def test_attach_worker_state_by_name(self):
        # The spawn initializer path: attach both segments by name in a
        # "different worker" (here: a different store id, same process).
        parts = _partitions(2)
        store = build_store(parts)
        store_id = shm_store.new_store_id()
        try:
            shm_store.attach_worker_state(store_id, store.layout)
            ref = store.write_broadcast(np.arange(6, dtype=np.float64))
            readonly, total = run_on_shm_partition(
                store_id, _probe_broadcast_task, 1, (ref,))
            assert readonly
            assert total == pytest.approx(15.0)
        finally:
            shm_store.discard_worker_state(store_id)
            store.close()

    def test_trampoline_requires_installed_store(self):
        with pytest.raises(RuntimeError, match="not installed"):
            run_on_shm_partition(10**9, _value_task, 0, (0.0,))


class TestShmBackendBroadcast:
    def test_shared_model_vector_rides_the_arena(self):
        parts = _partitions(3)
        with make_backend("shm") as backend:
            backend.install_partitions(parts)
            w = np.linspace(-1.0, 1.0, 6)
            # The SAME object in every worker's args = a broadcast; the
            # workers must see its values (through the arena) read-only.
            got = backend.map_partitions(_probe_broadcast_task,
                                         [(w,)] * 3)
            assert all(readonly for readonly, _ in got)
            assert [total for _, total in got] \
                == [pytest.approx(float(w.sum()))] * 3

    def test_distinct_vectors_still_ship_by_value(self):
        parts = _partitions(2)
        with make_backend("shm") as backend:
            backend.install_partitions(parts)
            per_worker = [(np.full(6, 1.0),), (np.full(6, 2.0),)]
            got = backend.map_partitions(_probe_broadcast_task,
                                         per_worker)
            assert [total for _, total in got] == [6.0, 12.0]

    def test_run_one_routes_model_through_arena(self):
        with make_backend("shm") as backend:
            backend.install_partitions(_partitions(3))
            w = np.arange(6, dtype=np.float64)
            readonly, total = backend.run_one(_probe_broadcast_task, 2,
                                              (w,))
            assert readonly and total == pytest.approx(15.0)


# ----------------------------------------------------------------------
# wire protocol
# ----------------------------------------------------------------------
class TestWireProtocol:
    def _pair(self):
        left, right = socketlib.socketpair()
        return wire.FrameChannel(left), wire.FrameChannel(right)

    def test_frame_round_trip_counts_bytes(self):
        a, b = self._pair()
        try:
            payload = {"w": np.arange(4.0), "step": 3}
            sent = a.send(wire.TASK, payload)
            kind, received, total = b.recv()
            assert kind == wire.TASK
            assert total == sent
            assert received["step"] == 3
            assert np.array_equal(received["w"], payload["w"])
        finally:
            a.close()
            b.close()

    def test_request_measures_the_round_trip(self):
        a, b = self._pair()

        def responder():
            kind, payload, _ = b.recv()
            b.send(wire.RESULT, payload * 2)

        thread = threading.Thread(target=responder)
        thread.start()
        try:
            kind, reply, exchange = a.request(wire.TASK, 21)
            assert (kind, reply) == (wire.RESULT, 42)
            assert exchange.bytes_out > 0 and exchange.bytes_in > 0
            assert exchange.seconds >= 0.0
        finally:
            thread.join()
            a.close()
            b.close()

    def test_truncated_frame_raises(self):
        a, b = self._pair()
        try:
            a._sock.sendall(b"\x03")  # half a header, then EOF
            a.close()
            with pytest.raises(ConnectionError, match="mid-frame"):
                b.recv()
        finally:
            b.close()

    def test_summarize_groups_by_superstep(self):
        records = [
            wire.WireRecord("install", 0, 0, 100, 10, 0.5),
            wire.WireRecord("task", 0, 1, 30, 20, 0.2,
                            compute_seconds=0.15),
            wire.WireRecord("task", 1, 1, 30, 20, 0.3,
                            compute_seconds=0.4),
        ]
        summary = wire.summarize(records)
        assert summary["messages"] == 3
        assert summary["bytes_out"] == 160
        assert summary["install_bytes"] == 110
        rows = summary["per_superstep"]
        assert [row["superstep"] for row in rows] == [0, 1]
        assert rows[1]["messages"] == 2
        # comm = roundtrip - compute, floored at zero per record.
        assert rows[1]["comm_seconds"] == pytest.approx(0.05)

    def test_empty_wire_log_summary_is_none(self):
        assert wire.WireLog().summary() is None


# ----------------------------------------------------------------------
# measured-vs-simulated plumbing
# ----------------------------------------------------------------------
class TestWireHarvest:
    def test_serial_fit_reports_no_wire_stats(self):
        dataset, cluster, config = golden_workload()
        trainer = MLlibStarTrainer(Objective("hinge", "l2", 0.1), cluster,
                                   config)
        trainer.fit(dataset)
        assert trainer.last_wire_stats is None

    def test_socket_fit_harvests_wire_stats(self):
        dataset, cluster, config = golden_workload()
        config = dataclasses.replace(config, backend="socket")
        trainer = MLlibStarTrainer(Objective("hinge", "l2", 0.1), cluster,
                                   config)
        trainer.fit(dataset)
        stats = trainer.last_wire_stats
        assert stats is not None
        assert stats["messages"] > 0
        assert stats["install_bytes"] > 0
        assert stats["bytes_out"] > 0 and stats["bytes_in"] > 0
        # Superstep 0 is the install; the task supersteps follow.
        supersteps = [row["superstep"] for row in stats["per_superstep"]]
        assert supersteps[0] == 0 and len(supersteps) >= 2


class TestNetcheck:
    def test_fit_recovers_a_planted_line(self):
        alpha, bandwidth = 2e-4, 5e7
        sizes = [1_000.0, 10_000.0, 100_000.0, 500_000.0]
        samples = [(s, 2 * alpha + s / bandwidth) for s in sizes]
        fitted = fit_alpha_beta(samples)
        assert fitted["ok"] is True
        assert fitted["alpha_seconds"] == pytest.approx(alpha, rel=1e-6)
        assert fitted["bandwidth_bytes_per_second"] == pytest.approx(
            bandwidth, rel=1e-6)
        assert fitted["rms_residual_seconds"] == pytest.approx(0.0,
                                                              abs=1e-9)

    def test_fit_refuses_degenerate_samples(self):
        # Each degeneracy yields a diagnostic dict naming the cause
        # instead of None (or a singular-matrix crash in the solver).
        empty = fit_alpha_beta([])
        assert empty["ok"] is False and "2 samples" in empty["reason"]
        single = fit_alpha_beta([(100.0, 0.1)])
        assert single["ok"] is False
        assert "single superstep" in single["reason"]
        # Uniform sizes cannot separate alpha from beta.
        uniform = fit_alpha_beta([(100.0, 0.1), (100.0, 0.2)])
        assert uniform["ok"] is False
        assert "one message size" in uniform["reason"]
        assert uniform["distinct_sizes"] == 1
        # A negative slope is non-physical.
        negative = fit_alpha_beta([(100.0, 0.5), (200.0, 0.1)])
        assert negative["ok"] is False
        assert "not positive" in negative["reason"]
        # Non-finite measurements are reported, not propagated into the
        # least-squares solve.
        nan = fit_alpha_beta([(100.0, float("nan")), (200.0, 0.1)])
        assert nan["ok"] is False and "non-finite" in nan["reason"]

    def test_validate_network_smoke(self):
        report = validate_network(rows=120, features=24, executors=2,
                                  steps=2, seed=3)
        assert report["bit_identical"] is True
        assert report["measured"]["messages"] > 0
        assert report["measured"]["bytes_on_wire"] \
            > report["measured"]["install_bytes"] > 0
        assert report["simulated"]["seconds"] > 0.0
        assert report["ratio_measured_over_simulated"] is not None
        assert report["workload"]["executors"] == 2
