"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import SYSTEMS, build_parser, main


@pytest.fixture()
def libsvm_file(tmp_path):
    from repro.data import SyntheticSpec, generate, write_libsvm
    ds = generate(SyntheticSpec(n_rows=60, n_features=20, seed=2),
                  "file-ds")
    path = tmp_path / "data.libsvm"
    write_libsvm(ds, path)
    return path


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.system == "MLlib*"
        assert args.dataset == "avazu"
        assert args.l2 == 0.0

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--system", "Ray"])

    def test_all_systems_registered(self):
        assert set(SYSTEMS) == {"MLlib", "MLlib+MA", "MLlib*", "Petuum",
                                "Petuum*", "Angel", "ASGD", "spark.ml",
                                "spark.ml*"}


class TestDatasetsCommand:
    def test_lists_catalog(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("avazu", "url", "kddb", "kdd12", "WX"):
            assert name in out


class TestTrainCommand:
    def test_trains_and_prints_curve(self, capsys):
        code = main(["train", "--system", "MLlib*", "--dataset", "url",
                     "--steps", "3", "--eval-every", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MLlib* on url" in out
        assert "training accuracy" in out

    def test_export_csv_and_json(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        code = main(["train", "--system", "MLlib*", "--dataset", "url",
                     "--steps", "2", "--export-csv", str(csv_path),
                     "--export-json", str(json_path)])
        assert code == 0
        assert csv_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload[0]["system"] == "MLlib*"
        assert len(payload[0]["objectives"]) == 3  # step 0 + 2 steps

    def test_libsvm_path_input(self, tmp_path, capsys):
        from repro.data import SyntheticSpec, generate, write_libsvm
        ds = generate(SyntheticSpec(n_rows=60, n_features=20, seed=2),
                      "file-ds")
        path = tmp_path / "data.libsvm"
        write_libsvm(ds, path)
        code = main(["train", "--dataset", str(path), "--steps", "2",
                     "--executors", "4"])
        assert code == 0


class TestCompareCommand:
    def test_compares_two_systems(self, capsys):
        code = main(["compare", "--dataset", "url", "--steps", "5",
                     "--systems", "MLlib,MLlib*", "--eval-every", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MLlib*" in out
        assert "speedup vs MLlib" in out

    def test_unknown_system_in_list(self, capsys):
        code = main(["compare", "--systems", "MLlib,Nope"])
        assert code == 2
        assert "unknown systems" in capsys.readouterr().err


class TestPlanCommand:
    def test_decomposes_costs(self, capsys):
        assert main(["plan", "--dataset", "kddb"]) == 0
        out = capsys.readouterr().out
        assert "driver ms" in out
        assert "MLlib*" in out

    def test_cheapest_first(self, capsys):
        main(["plan", "--dataset", "kdd12", "--executors", "16"])
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines()
                 if l and l.split()[0] in ("MLlib", "MLlib*", "MLlib+MA",
                                           "Petuum*", "Angel")]
        totals = [float(l.split()[-1]) for l in lines]
        assert totals == sorted(totals)


class TestTuneCommand:
    def test_runs_grid(self, capsys):
        code = main(["tune", "--dataset", "url", "--system", "MLlib*",
                     "--steps", "3", "--learning-rates", "0.1,0.3",
                     "--chunk-sizes", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "grid search" in out
        assert "best:" in out


class TestServingParser:
    def test_predict_defaults(self):
        args = build_parser().parse_args(["predict", "--model", "m.npz",
                                          "--data", "url"])
        assert args.serve_max_batch == 32
        assert args.serve_max_delay_ms == 1.0
        assert args.serve_queue_limit is None
        assert args.serve_workers == 2

    def test_save_defaults(self):
        args = build_parser().parse_args(["save"])
        assert args.system == "MLlib*"
        assert not args.promote

    def test_models_requires_registry(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["models"])


class TestSaveAndPredictCommands:
    def test_save_then_predict_artifact(self, tmp_path, libsvm_file,
                                        capsys):
        artifact = tmp_path / "model.npz"
        code = main(["save", "--system", "MLlib*", "--dataset",
                     str(libsvm_file), "--steps", "2", "--l2", "0.1",
                     "--out", str(artifact)])
        assert code == 0
        assert artifact.exists()
        json_path = tmp_path / "pred.json"
        code = main(["predict", "--model", str(artifact), "--data",
                     str(libsvm_file), "--head", "3",
                     "--export-json", str(json_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "rows scored" in out
        assert "accuracy" in out
        payload = json.loads(json_path.read_text())
        assert payload["serving"]["completed"] == 60
        assert payload["serving"]["shed"] == 0
        assert len(payload["predictions"]) == 60

    def test_predict_accuracy_matches_in_memory_model(self, tmp_path,
                                                      libsvm_file,
                                                      capsys):
        artifact = tmp_path / "model.npz"
        main(["save", "--dataset", str(libsvm_file), "--steps", "2",
              "--l2", "0.1", "--out", str(artifact)])
        capsys.readouterr()
        main(["predict", "--model", str(artifact), "--data",
              str(libsvm_file)])
        out = capsys.readouterr().out
        from repro.data import read_libsvm
        from repro.glm import GLMModel
        model = GLMModel.load(artifact)
        dataset = read_libsvm(libsvm_file)
        expected = model.accuracy(dataset.X, dataset.y)
        assert f"accuracy {expected:.4f}" in out

    def test_registry_flow_with_shadow(self, tmp_path, libsvm_file,
                                       capsys):
        registry = tmp_path / "registry"
        for seed in ("0", "1"):
            code = main(["save", "--dataset", str(libsvm_file),
                         "--steps", "2", "--l2", "0.1", "--seed", seed,
                         "--registry", str(registry), "--name", "svm",
                         "--promote"])
            assert code == 0
        assert main(["models", "--registry", str(registry)]) == 0
        out = capsys.readouterr().out
        assert "svm (2 versions)" in out
        assert "v0001" in out and "v0002" in out
        code = main(["predict", "--registry", str(registry), "--name",
                     "svm", "--data", str(libsvm_file), "--shadow",
                     "v0001"])
        assert code == 0
        out = capsys.readouterr().out
        assert "disagree" in out

    def test_predict_missing_source_fails(self, capsys, libsvm_file):
        code = main(["predict", "--data", str(libsvm_file)])
        assert code == 2
        assert "model source" in capsys.readouterr().err

    def test_predict_corrupt_artifact_fails(self, tmp_path, capsys,
                                            libsvm_file):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not a model")
        code = main(["predict", "--model", str(bad), "--data",
                     str(libsvm_file)])
        assert code == 2
        assert "predict:" in capsys.readouterr().err


class TestServeBenchCommand:
    def test_sweep_with_explicit_rates(self, tmp_path, libsvm_file,
                                       capsys):
        artifact = tmp_path / "model.npz"
        main(["save", "--dataset", str(libsvm_file), "--steps", "2",
              "--out", str(artifact)])
        out_path = tmp_path / "sweep.json"
        code = main(["serve-bench", "--model", str(artifact), "--data",
                     str(libsvm_file), "--rates", "2000,8000",
                     "--duration", "0.05", "--out", str(out_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "open-loop sweep" in out
        payload = json.loads(out_path.read_text())
        assert payload["bench"] == "serving"
        assert [r["rate"] for r in payload["rows"]] == [2000.0, 8000.0]


class TestGanttCommand:
    def test_renders_chart(self, capsys):
        code = main(["gantt", "--system", "MLlib", "--dataset", "url",
                     "--steps", "2", "--executors", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "driver" in out
        assert "makespan" in out
