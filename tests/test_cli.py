"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import SYSTEMS, build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_defaults(self):
        args = build_parser().parse_args(["train"])
        assert args.system == "MLlib*"
        assert args.dataset == "avazu"
        assert args.l2 == 0.0

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--system", "Ray"])

    def test_all_systems_registered(self):
        assert set(SYSTEMS) == {"MLlib", "MLlib+MA", "MLlib*", "Petuum",
                                "Petuum*", "Angel", "ASGD", "spark.ml",
                                "spark.ml*"}


class TestDatasetsCommand:
    def test_lists_catalog(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("avazu", "url", "kddb", "kdd12", "WX"):
            assert name in out


class TestTrainCommand:
    def test_trains_and_prints_curve(self, capsys):
        code = main(["train", "--system", "MLlib*", "--dataset", "url",
                     "--steps", "3", "--eval-every", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MLlib* on url" in out
        assert "training accuracy" in out

    def test_export_csv_and_json(self, tmp_path, capsys):
        csv_path = tmp_path / "out.csv"
        json_path = tmp_path / "out.json"
        code = main(["train", "--system", "MLlib*", "--dataset", "url",
                     "--steps", "2", "--export-csv", str(csv_path),
                     "--export-json", str(json_path)])
        assert code == 0
        assert csv_path.exists()
        payload = json.loads(json_path.read_text())
        assert payload[0]["system"] == "MLlib*"
        assert len(payload[0]["objectives"]) == 3  # step 0 + 2 steps

    def test_libsvm_path_input(self, tmp_path, capsys):
        from repro.data import SyntheticSpec, generate, write_libsvm
        ds = generate(SyntheticSpec(n_rows=60, n_features=20, seed=2),
                      "file-ds")
        path = tmp_path / "data.libsvm"
        write_libsvm(ds, path)
        code = main(["train", "--dataset", str(path), "--steps", "2",
                     "--executors", "4"])
        assert code == 0


class TestCompareCommand:
    def test_compares_two_systems(self, capsys):
        code = main(["compare", "--dataset", "url", "--steps", "5",
                     "--systems", "MLlib,MLlib*", "--eval-every", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MLlib*" in out
        assert "speedup vs MLlib" in out

    def test_unknown_system_in_list(self, capsys):
        code = main(["compare", "--systems", "MLlib,Nope"])
        assert code == 2
        assert "unknown systems" in capsys.readouterr().err


class TestPlanCommand:
    def test_decomposes_costs(self, capsys):
        assert main(["plan", "--dataset", "kddb"]) == 0
        out = capsys.readouterr().out
        assert "driver ms" in out
        assert "MLlib*" in out

    def test_cheapest_first(self, capsys):
        main(["plan", "--dataset", "kdd12", "--executors", "16"])
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines()
                 if l and l.split()[0] in ("MLlib", "MLlib*", "MLlib+MA",
                                           "Petuum*", "Angel")]
        totals = [float(l.split()[-1]) for l in lines]
        assert totals == sorted(totals)


class TestTuneCommand:
    def test_runs_grid(self, capsys):
        code = main(["tune", "--dataset", "url", "--system", "MLlib*",
                     "--steps", "3", "--learning-rates", "0.1,0.3",
                     "--chunk-sizes", "64"])
        assert code == 0
        out = capsys.readouterr().out
        assert "grid search" in out
        assert "best:" in out


class TestGanttCommand:
    def test_renders_chart(self, capsys):
        code = main(["gantt", "--system", "MLlib", "--dataset", "url",
                     "--steps", "2", "--executors", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "driver" in out
        assert "makespan" in out
