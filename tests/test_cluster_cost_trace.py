"""Unit tests for repro.cluster.cost and repro.cluster.trace."""

import pytest

from repro.cluster.cost import ComputeCostModel
from repro.cluster.node import NodeSpec
from repro.cluster.trace import SPAN_KINDS, Span, Trace


class TestComputeCostModel:
    def test_sparse_pass_linear_in_nnz(self):
        cm = ComputeCostModel(sec_per_nnz=1e-6)
        node = NodeSpec(node_id=0)
        assert cm.sparse_pass_seconds(2000, node) == pytest.approx(
            2 * cm.sparse_pass_seconds(1000, node))

    def test_node_speed_divides(self):
        cm = ComputeCostModel()
        fast = NodeSpec(node_id=0, speed=2.0)
        ref = NodeSpec(node_id=1, speed=1.0)
        assert cm.sparse_pass_seconds(1e6, fast) == pytest.approx(
            cm.sparse_pass_seconds(1e6, ref) / 2)

    def test_update_factor(self):
        cm = ComputeCostModel()
        node = NodeSpec(node_id=0)
        assert cm.sparse_pass_seconds(1e5, node, update_factor=2.0) == (
            pytest.approx(2 * cm.sparse_pass_seconds(1e5, node)))

    def test_dense_op_seconds(self):
        cm = ComputeCostModel(sec_per_coord=1e-9)
        node = NodeSpec(node_id=0)
        assert cm.dense_op_seconds(1e9, node) == pytest.approx(1.0)

    def test_rejects_negative_work(self):
        cm = ComputeCostModel()
        node = NodeSpec(node_id=0)
        with pytest.raises(ValueError):
            cm.sparse_pass_seconds(-1, node)
        with pytest.raises(ValueError):
            cm.dense_op_seconds(-1, node)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            ComputeCostModel(sec_per_nnz=0)
        with pytest.raises(ValueError):
            ComputeCostModel(sec_per_coord=-1)


class TestSpan:
    def test_duration(self):
        span = Span(node="executor-1", start=1.0, end=3.5, kind="compute")
        assert span.duration == pytest.approx(2.5)

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            Span(node="x", start=0, end=1, kind="sleeping")

    def test_rejects_backwards_time(self):
        with pytest.raises(ValueError):
            Span(node="x", start=2.0, end=1.0, kind="compute")

    def test_all_kinds_constructible(self):
        for kind in SPAN_KINDS:
            Span(node="x", start=0, end=1, kind=kind)


class TestTrace:
    def test_add_and_len(self):
        trace = Trace()
        trace.add("driver", 0, 1, "update")
        trace.add("executor-1", 0, 2, "compute")
        assert len(trace) == 2

    def test_nodes_first_appearance_order(self):
        trace = Trace()
        trace.add("b", 0, 1, "compute")
        trace.add("a", 1, 2, "compute")
        trace.add("b", 2, 3, "wait")
        assert trace.nodes() == ["b", "a"]

    def test_end_time(self):
        trace = Trace()
        assert trace.end_time() == 0.0
        trace.add("x", 0, 5, "compute")
        trace.add("y", 2, 3, "send")
        assert trace.end_time() == 5.0

    def test_busy_excludes_wait(self):
        trace = Trace()
        trace.add("x", 0, 2, "compute")
        trace.add("x", 2, 5, "wait")
        assert trace.busy_seconds("x") == pytest.approx(2.0)
        assert trace.wait_seconds("x") == pytest.approx(3.0)

    def test_busy_kind_filter(self):
        trace = Trace()
        trace.add("x", 0, 2, "compute")
        trace.add("x", 2, 3, "send")
        assert trace.busy_seconds("x", frozenset({"send"})) == (
            pytest.approx(1.0))

    def test_utilization(self):
        trace = Trace()
        trace.add("x", 0, 2, "compute")
        trace.add("y", 0, 4, "compute")
        assert trace.utilization("x") == pytest.approx(0.5)
        assert trace.utilization("y") == pytest.approx(1.0)

    def test_kind_totals(self):
        trace = Trace()
        trace.add("x", 0, 2, "compute")
        trace.add("y", 0, 3, "compute")
        trace.add("x", 2, 4, "wait")
        totals = trace.kind_totals()
        assert totals["compute"] == pytest.approx(5.0)
        assert totals["wait"] == pytest.approx(2.0)
