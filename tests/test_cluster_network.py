"""Unit tests for repro.cluster.network (alpha-beta cost model)."""

import pytest

from repro.cluster.network import GIGABIT, TEN_GIGABIT, NetworkModel


class TestTransfer:
    def test_zero_values_is_free(self):
        net = NetworkModel()
        assert net.transfer_seconds(0) == 0.0

    def test_latency_plus_bandwidth(self):
        net = NetworkModel(bandwidth=1e6, alpha=0.01, bytes_per_value=8)
        # 1000 values * 8 bytes / 1e6 B/s = 8 ms, plus 10 ms latency.
        assert net.transfer_seconds(1000) == pytest.approx(0.018)

    def test_monotone_in_size(self):
        net = NetworkModel()
        assert net.transfer_seconds(2000) > net.transfer_seconds(1000)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            NetworkModel().transfer_seconds(-1)


class TestAggregatePatterns:
    def test_fan_in_serializes(self):
        net = NetworkModel()
        one = net.transfer_seconds(500)
        assert net.fan_in_seconds(8, 500) == pytest.approx(8 * one)

    def test_fan_out_equals_fan_in(self):
        net = NetworkModel()
        assert net.fan_out_seconds(5, 100) == net.fan_in_seconds(5, 100)

    def test_round_is_one_transfer(self):
        """Balanced all-pairs rounds cost a single transfer, not k of them."""
        net = NetworkModel()
        assert net.round_seconds(500) == pytest.approx(
            net.transfer_seconds(500))

    def test_fan_in_zero_senders_free(self):
        assert NetworkModel().fan_in_seconds(0, 1000) == 0.0

    def test_fan_in_rejects_negative_senders(self):
        with pytest.raises(ValueError):
            NetworkModel().fan_in_seconds(-1, 10)


class TestDriverBottleneckEconomics:
    """The quantitative heart of bottleneck B2."""

    def test_driver_fan_in_beats_all_to_all_for_large_models(self):
        net = NetworkModel(bandwidth=GIGABIT, alpha=1e-3)
        k, m = 8, 5_000_000
        driver = net.fan_in_seconds(k, m)
        # Reduce-scatter style: k-1 concurrent messages of m/k values.
        all_to_all = (k - 1) * net.transfer_seconds(m / k)
        assert driver > 5 * all_to_all

    def test_latency_dominates_for_tiny_models(self):
        """For small models the extra messages of AllReduce can LOSE —
        consistent with the paper's smaller gains on avazu."""
        net = NetworkModel(bandwidth=GIGABIT, alpha=1e-3)
        k, m = 8, 100
        driver = net.fan_in_seconds(k, m)
        all_to_all = (k - 1) * net.transfer_seconds(m / k)
        assert all_to_all < 2 * driver  # comparable, no big win


class TestValidation:
    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            NetworkModel(alpha=-1e-3)

    def test_rejects_bad_bytes_per_value(self):
        with pytest.raises(ValueError):
            NetworkModel(bytes_per_value=0)

    def test_link_constants(self):
        assert TEN_GIGABIT == pytest.approx(10 * GIGABIT)
