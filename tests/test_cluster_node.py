"""Unit tests for repro.cluster.node."""

import numpy as np
import pytest

from repro.cluster.node import (LogNormalStragglers, NodeSpec, NoStragglers,
                                heterogeneous_nodes, homogeneous_nodes)


class TestNodeSpec:
    def test_compute_seconds_scales_with_speed(self):
        fast = NodeSpec(node_id=0, speed=2.0)
        slow = NodeSpec(node_id=1, speed=0.5)
        assert fast.compute_seconds(10.0) == pytest.approx(5.0)
        assert slow.compute_seconds(10.0) == pytest.approx(20.0)

    def test_rejects_nonpositive_speed(self):
        with pytest.raises(ValueError, match="speed"):
            NodeSpec(node_id=0, speed=0.0)
        with pytest.raises(ValueError, match="speed"):
            NodeSpec(node_id=0, speed=-1.0)

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError, match="core"):
            NodeSpec(node_id=0, cores=0)

    def test_is_frozen(self):
        node = NodeSpec(node_id=0)
        with pytest.raises(AttributeError):
            node.speed = 2.0


class TestHomogeneousNodes:
    def test_count_and_ids(self):
        nodes = homogeneous_nodes(5)
        assert len(nodes) == 5
        assert [n.node_id for n in nodes] == [0, 1, 2, 3, 4]

    def test_all_same_speed(self):
        nodes = homogeneous_nodes(4, speed=1.5)
        assert all(n.speed == 1.5 for n in nodes)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            homogeneous_nodes(0)


class TestHeterogeneousNodes:
    def test_speeds_vary(self):
        rng = np.random.default_rng(0)
        nodes = heterogeneous_nodes(50, rng, speed_sigma=0.25)
        speeds = [n.speed for n in nodes]
        assert len(set(speeds)) > 1
        assert all(s > 0 for s in speeds)

    def test_deterministic_given_rng_seed(self):
        a = heterogeneous_nodes(10, np.random.default_rng(3))
        b = heterogeneous_nodes(10, np.random.default_rng(3))
        assert [n.speed for n in a] == [n.speed for n in b]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            heterogeneous_nodes(0, np.random.default_rng(0))


class TestStragglerModels:
    def test_no_stragglers_is_unity(self):
        model = NoStragglers()
        rng = np.random.default_rng(0)
        node = NodeSpec(node_id=0)
        assert all(model.slowdown(rng, node, t) == 1.0 for t in range(20))

    def test_lognormal_at_least_one(self):
        model = LogNormalStragglers(sigma=0.5)
        rng = np.random.default_rng(0)
        node = NodeSpec(node_id=0)
        draws = [model.slowdown(rng, node, t) for t in range(200)]
        assert all(d >= 1.0 for d in draws)
        assert max(d for d in draws) > 1.0

    def test_lognormal_zero_sigma_is_unity(self):
        model = LogNormalStragglers(sigma=0.0)
        rng = np.random.default_rng(0)
        node = NodeSpec(node_id=0)
        assert model.slowdown(rng, node, 0) == 1.0

    def test_lognormal_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            LogNormalStragglers(sigma=-0.1)

    def test_max_slowdown_grows_with_worker_count(self):
        """The BSP-barrier argument: max over k draws grows with k."""
        model = LogNormalStragglers(sigma=0.4)
        rng = np.random.default_rng(1)
        node = NodeSpec(node_id=0)
        max_of_4 = np.mean([
            max(model.slowdown(rng, node, 0) for _ in range(4))
            for _ in range(200)])
        max_of_64 = np.mean([
            max(model.slowdown(rng, node, 0) for _ in range(64))
            for _ in range(200)])
        assert max_of_64 > max_of_4
