"""Unit tests for repro.cluster.cluster (ClusterSpec and presets)."""

import pytest

from repro.cluster import (ClusterSpec, LogNormalStragglers, NoStragglers,
                           cluster1, cluster2, homogeneous_nodes)


class TestClusterSpec:
    def test_driver_and_executors(self):
        spec = ClusterSpec(nodes=homogeneous_nodes(5))
        assert spec.driver.node_id == 0
        assert [n.node_id for n in spec.executors] == [1, 2, 3, 4]
        assert spec.num_executors == 4

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ClusterSpec(nodes=[])

    def test_rejects_duplicate_ids(self):
        nodes = homogeneous_nodes(3)
        with pytest.raises(ValueError, match="unique"):
            ClusterSpec(nodes=[nodes[0], nodes[0], nodes[1]])

    def test_slowdown_reproducible_after_reset(self):
        spec = ClusterSpec(nodes=homogeneous_nodes(3),
                           stragglers=LogNormalStragglers(sigma=0.4), seed=5)
        first = [spec.slowdown(spec.executors[0], t) for t in range(10)]
        spec.reset_rng()
        second = [spec.slowdown(spec.executors[0], t) for t in range(10)]
        assert first == second


class TestCluster1:
    def test_shape(self):
        spec = cluster1()
        assert spec.num_executors == 8
        assert len(spec.nodes) == 9

    def test_homogeneous(self):
        spec = cluster1()
        assert len({n.speed for n in spec.nodes}) == 1
        assert isinstance(spec.stragglers, NoStragglers)

    def test_one_gbps(self):
        assert cluster1().network.bandwidth == pytest.approx(1e9 / 8)

    def test_custom_executor_count(self):
        assert cluster1(executors=4).num_executors == 4


class TestCluster2:
    def test_shape(self):
        spec = cluster2(machines=32)
        assert spec.num_executors == 32

    def test_heterogeneous_speeds(self):
        spec = cluster2(machines=32)
        speeds = {n.speed for n in spec.nodes}
        assert len(speeds) > 1

    def test_has_stragglers(self):
        assert isinstance(cluster2(8).stragglers, LogNormalStragglers)

    def test_ten_gbps(self):
        assert cluster2(8).network.bandwidth == pytest.approx(10e9 / 8)

    def test_deterministic_given_seed(self):
        a = cluster2(16, seed=3)
        b = cluster2(16, seed=3)
        assert [n.speed for n in a.nodes] == [n.speed for n in b.nodes]

    def test_rejects_zero_machines(self):
        with pytest.raises(ValueError):
            cluster2(0)
