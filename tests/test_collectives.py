"""Unit tests for repro.collectives (Reduce-Scatter / AllGather / AllReduce)."""

import numpy as np
import pytest

from repro.collectives import (all_gather, all_reduce_average,
                               partition_slices, reduce_scatter,
                               traffic_values)


class TestPartitionSlices:
    def test_covers_range_exactly(self):
        slices = partition_slices(100, 8)
        assert slices[0].start == 0
        assert slices[-1].stop == 100
        for a, b in zip(slices, slices[1:]):
            assert a.stop == b.start

    def test_balanced(self):
        slices = partition_slices(103, 8)
        sizes = [s.stop - s.start for s in slices]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 103

    def test_single_worker(self):
        assert partition_slices(10, 1) == [slice(0, 10)]

    def test_rejects_too_many_workers(self):
        with pytest.raises(ValueError):
            partition_slices(3, 8)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            partition_slices(10, 0)


class TestReduceScatter:
    def test_owner_partitions_are_averages(self):
        rng = np.random.default_rng(0)
        models = [rng.normal(size=40) for _ in range(4)]
        partitions = reduce_scatter(models)
        mean = np.mean(models, axis=0)
        slices = partition_slices(40, 4)
        for owner, part in enumerate(partitions):
            assert np.allclose(part, mean[slices[owner]])

    def test_sum_mode(self):
        models = [np.ones(8), 2 * np.ones(8)]
        partitions = reduce_scatter(models, combine="sum")
        assert np.allclose(np.concatenate(partitions), 3 * np.ones(8))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="same shape"):
            reduce_scatter([np.ones(4), np.ones(5)])

    def test_invalid_combine(self):
        with pytest.raises(ValueError):
            reduce_scatter([np.ones(4)], combine="median")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reduce_scatter([])


class TestAllGather:
    def test_reassembles_in_owner_order(self):
        partitions = [np.array([0.0, 1.0]), np.array([2.0, 3.0])]
        full = all_gather(partitions, 4)
        assert np.allclose(full, [0.0, 1.0, 2.0, 3.0])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sizes"):
            all_gather([np.ones(3), np.ones(3)], 4)


class TestAllReduce:
    @pytest.mark.parametrize("k,m", [(1, 5), (2, 10), (4, 10), (8, 103)])
    def test_equals_numpy_mean(self, k, m):
        rng = np.random.default_rng(k * 100 + m)
        models = [rng.normal(size=m) for _ in range(k)]
        got = all_reduce_average(models)
        assert np.allclose(got, np.mean(models, axis=0))

    def test_idempotent_on_identical_models(self):
        models = [np.arange(12.0)] * 4
        assert np.allclose(all_reduce_average(models), np.arange(12.0))


class TestTrafficInvariant:
    def test_two_k_m_shape(self):
        """Section IV-B2: each executor sends/receives the model twice.

        Exact per-run traffic is 2(k-1)m; the paper rounds to 2km.
        """
        k, m = 8, 1000
        exact = traffic_values(m, k)
        assert exact == pytest.approx(2 * (k - 1) * m)
        paper_estimate = 2 * k * m
        assert exact <= paper_estimate
        assert exact >= paper_estimate * (k - 1) / k

    def test_single_worker_no_traffic(self):
        assert traffic_values(1000, 1) == 0.0
