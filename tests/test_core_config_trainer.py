"""Unit tests for repro.core.config and the trainer template."""

import numpy as np
import pytest

from repro.core import (MLlibStarTrainer, MLlibTrainer, TrainerConfig,
                        TrainResult)
from repro.glm import Objective


class TestTrainerConfig:
    def test_defaults_valid(self):
        TrainerConfig()

    @pytest.mark.parametrize("field,value", [
        ("learning_rate", 0.0),
        ("batch_fraction", 0.0),
        ("batch_fraction", 1.5),
        ("local_epochs", 0),
        ("local_chunk_size", 0),
        ("max_steps", 0),
        ("eval_every", 0),
        ("divergence_limit", 0.0),
    ])
    def test_validation(self, field, value):
        with pytest.raises(ValueError):
            TrainerConfig(**{field: value})

    def test_with_overrides(self):
        base = TrainerConfig(max_steps=10)
        other = base.with_overrides(max_steps=20, learning_rate=0.5)
        assert other.max_steps == 20
        assert other.learning_rate == 0.5
        assert base.max_steps == 10  # original untouched

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TrainerConfig().max_steps = 5


class TestFitLoop:
    def test_history_starts_at_step_zero(self, tiny_dataset, small_cluster):
        trainer = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                   TrainerConfig(max_steps=3))
        result = trainer.fit(tiny_dataset)
        assert result.history.points[0].step == 0
        assert result.history.points[0].seconds == 0.0

    def test_history_lengths(self, tiny_dataset, small_cluster):
        trainer = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                   TrainerConfig(max_steps=5))
        result = trainer.fit(tiny_dataset)
        assert len(result.history) == 6  # step 0 + 5 steps

    def test_eval_every_thins_history(self, tiny_dataset, small_cluster):
        trainer = MLlibTrainer(Objective("hinge"), small_cluster,
                               TrainerConfig(max_steps=10, eval_every=5))
        result = trainer.fit(tiny_dataset)
        assert [p.step for p in result.history] == [0, 5, 10]

    def test_final_step_always_evaluated(self, tiny_dataset, small_cluster):
        trainer = MLlibTrainer(Objective("hinge"), small_cluster,
                               TrainerConfig(max_steps=7, eval_every=5))
        result = trainer.fit(tiny_dataset)
        assert result.history.points[-1].step == 7

    def test_early_stop_on_threshold(self, tiny_dataset, small_cluster):
        trainer = MLlibStarTrainer(
            Objective("hinge"), small_cluster,
            TrainerConfig(max_steps=50, stop_threshold=0.9))
        result = trainer.fit(tiny_dataset)
        assert result.converged
        assert result.history.total_steps < 50

    def test_simulated_time_monotone(self, tiny_dataset, small_cluster):
        trainer = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                   TrainerConfig(max_steps=5))
        secs = trainer.fit(tiny_dataset).history.seconds()
        assert secs == sorted(secs)
        assert secs[-1] > 0

    def test_deterministic_given_seed(self, tiny_dataset, small_cluster):
        def run():
            trainer = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                       TrainerConfig(max_steps=4, seed=3))
            return trainer.fit(tiny_dataset)
        a, b = run(), run()
        assert np.array_equal(a.model.weights, b.model.weights)
        assert a.history.objectives() == b.history.objectives()
        assert a.history.seconds() == b.history.seconds()

    def test_result_fields(self, tiny_dataset, small_cluster):
        trainer = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                   TrainerConfig(max_steps=2))
        result = trainer.fit(tiny_dataset)
        assert isinstance(result, TrainResult)
        assert result.model.dim == tiny_dataset.n_features
        assert len(result.trace) > 0
        assert not result.diverged
        assert result.final_objective == result.history.final_objective
