"""Behavioural tests for the spark.ml L-BFGS trainers (paper §VII)."""

import numpy as np
import pytest

from repro.core import SparkMlStarTrainer, SparkMlTrainer, TrainerConfig
from repro.engine import DRIVER_LABEL
from repro.glm import Objective


CFG = TrainerConfig(max_steps=10, seed=1)


@pytest.fixture
def objective():
    return Objective("logistic", "l2", 0.01)


class TestSparkMl:
    def test_objective_decreases_monotonically(self, small_dataset,
                                               small_cluster, objective):
        result = SparkMlTrainer(objective, small_cluster, CFG).fit(
            small_dataset)
        objs = result.history.objectives()
        # Line search enforces sufficient decrease every iteration.
        assert all(b <= a + 1e-12 for a, b in zip(objs, objs[1:]))

    def test_beats_gd_per_step(self, small_dataset, small_cluster,
                               objective):
        """Second-order progress: much lower loss in the same number of
        communication steps than SendGradient MGD."""
        from repro.core import MLlibTrainer
        lbfgs = SparkMlTrainer(objective, small_cluster, CFG).fit(
            small_dataset)
        mgd = MLlibTrainer(objective, small_cluster, CFG).fit(small_dataset)
        assert lbfgs.final_objective < mgd.final_objective

    def test_driver_busy(self, small_dataset, small_cluster, objective):
        result = SparkMlTrainer(objective, small_cluster, CFG).fit(
            small_dataset)
        assert result.trace.busy_seconds(DRIVER_LABEL) > 0


class TestSparkMlStar:
    def test_identical_iterates(self, small_dataset, small_cluster,
                                objective):
        """AllReduce changes communication, not math."""
        a = SparkMlTrainer(objective, small_cluster, CFG).fit(small_dataset)
        b = SparkMlStarTrainer(objective, small_cluster, CFG).fit(
            small_dataset)
        assert np.allclose(a.model.weights, b.model.weights)
        assert a.history.objectives() == pytest.approx(
            b.history.objectives())

    def test_no_driver_work(self, small_dataset, small_cluster, objective):
        result = SparkMlStarTrainer(objective, small_cluster, CFG).fit(
            small_dataset)
        assert result.trace.busy_seconds(DRIVER_LABEL) == 0.0

    def test_faster_clock_for_large_models(self, small_cluster, objective):
        from repro.data import SyntheticSpec, generate
        big = generate(SyntheticSpec(n_rows=500, n_features=20_000,
                                     nnz_per_row=10.0, seed=9), "big")
        a = SparkMlTrainer(objective, small_cluster, CFG).fit(big)
        b = SparkMlStarTrainer(objective, small_cluster, CFG).fit(big)
        assert b.history.total_seconds < a.history.total_seconds

    def test_system_names(self, small_cluster, objective):
        assert SparkMlTrainer(objective, small_cluster).system == "spark.ml"
        assert SparkMlStarTrainer(objective, small_cluster).system == (
            "spark.ml*")

    def test_deterministic(self, tiny_dataset, small_cluster, objective):
        a = SparkMlStarTrainer(objective, small_cluster, CFG).fit(
            tiny_dataset)
        b = SparkMlStarTrainer(objective, small_cluster, CFG).fit(
            tiny_dataset)
        assert np.array_equal(a.model.weights, b.model.weights)
