"""Behavioural tests for the three Spark-side trainers."""

import numpy as np
import pytest

from repro.core import (MLlibModelAveragingTrainer, MLlibStarTrainer,
                        MLlibTrainer, TrainerConfig)
from repro.engine import DRIVER_LABEL
from repro.glm import Objective


CFG = TrainerConfig(max_steps=8, learning_rate=0.1, seed=1)


class TestMLlib:
    def test_objective_decreases(self, tiny_dataset, small_cluster):
        result = MLlibTrainer(Objective("hinge"), small_cluster, CFG).fit(
            tiny_dataset)
        objs = result.history.objectives()
        assert objs[-1] < objs[0]

    def test_driver_is_busy(self, tiny_dataset, small_cluster):
        result = MLlibTrainer(Objective("hinge"), small_cluster, CFG).fit(
            tiny_dataset)
        assert result.trace.busy_seconds(DRIVER_LABEL) > 0

    def test_one_update_per_step(self, tiny_dataset, small_cluster):
        """SendGradient: driver 'update' spans == number of steps."""
        result = MLlibTrainer(Objective("hinge"), small_cluster, CFG).fit(
            tiny_dataset)
        updates = [s for s in result.trace.spans_for(DRIVER_LABEL)
                   if s.kind == "update"]
        assert len(updates) == result.history.total_steps

    def test_executors_wait_during_driver_work(self, tiny_dataset,
                                               small_cluster):
        result = MLlibTrainer(Objective("hinge"), small_cluster, CFG).fit(
            tiny_dataset)
        waits = sum(result.trace.wait_seconds(f"executor-{i + 1}")
                    for i in range(4))
        assert waits > 0


class TestMLlibMA:
    def test_converges_faster_than_mllib_per_step(self, small_dataset,
                                                  small_cluster):
        """Model averaging: many updates per step => lower objective after
        the same number of communication steps."""
        obj = Objective("hinge")
        mllib = MLlibTrainer(obj, small_cluster, CFG).fit(small_dataset)
        ma = MLlibModelAveragingTrainer(obj, small_cluster, CFG).fit(
            small_dataset)
        assert ma.final_objective < mllib.final_objective

    def test_still_uses_driver(self, tiny_dataset, small_cluster):
        result = MLlibModelAveragingTrainer(
            Objective("hinge"), small_cluster, CFG).fit(tiny_dataset)
        assert result.trace.busy_seconds(DRIVER_LABEL) > 0


class TestMLlibStar:
    def test_matches_ma_numerics_exactly(self, small_dataset, small_cluster):
        """AllReduce changes the communication pattern, NOT the math:
        MLlib* and MLlib+MA must produce identical iterates."""
        obj = Objective("hinge", "l2", 0.1)
        ma = MLlibModelAveragingTrainer(obj, small_cluster, CFG).fit(
            small_dataset)
        star = MLlibStarTrainer(obj, small_cluster, CFG).fit(small_dataset)
        assert np.allclose(ma.model.weights, star.model.weights)
        assert ma.history.objectives() == pytest.approx(
            star.history.objectives())

    def test_driver_does_no_data_work(self, tiny_dataset, small_cluster):
        result = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                  CFG).fit(tiny_dataset)
        assert result.trace.busy_seconds(DRIVER_LABEL) == 0.0

    def test_faster_steps_than_ma_for_large_models(self, small_cluster):
        """With a big model, MLlib* steps must be cheaper than MLlib+MA's
        (same local math; cheaper communication)."""
        from repro.data import SyntheticSpec, generate
        big = generate(SyntheticSpec(n_rows=400, n_features=30_000,
                                     nnz_per_row=10.0, seed=5), "bigmodel")
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=3, seed=1)
        ma = MLlibModelAveragingTrainer(obj, small_cluster, cfg).fit(big)
        star = MLlibStarTrainer(obj, small_cluster, cfg).fit(big)
        assert star.history.total_seconds < ma.history.total_seconds

    def test_sum_combine_supported(self, tiny_dataset, small_cluster):
        trainer = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                   CFG, combine="sum")
        result = trainer.fit(tiny_dataset)
        assert len(result.history) > 0

    def test_invalid_combine(self, small_cluster):
        with pytest.raises(ValueError):
            MLlibStarTrainer(Objective("hinge"), small_cluster,
                             CFG, combine="max")

    def test_model_smaller_than_executors_rejected(self, small_cluster):
        from repro.data import SyntheticSpec, generate
        micro = generate(SyntheticSpec(n_rows=50, n_features=3,
                                       nnz_per_row=2.0, seed=1), "micro")
        trainer = MLlibStarTrainer(Objective("hinge"), small_cluster, CFG)
        with pytest.raises(ValueError, match="partition"):
            trainer.fit(micro)


class TestLearningRateSchedules:
    def test_inv_sqrt_schedule_used(self, tiny_dataset, small_cluster):
        cfg = CFG.with_overrides(lr_schedule="inv_sqrt")
        result = MLlibTrainer(Objective("hinge"), small_cluster, cfg).fit(
            tiny_dataset)
        assert result.history.final_objective < 1.0
