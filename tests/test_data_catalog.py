"""Unit tests for repro.data.catalog (Table I analogs)."""

import pytest

from repro.data.catalog import (CATALOG, PAPER_TABLE1, dataset_names, load)


class TestCatalogStructure:
    def test_five_datasets_in_order(self):
        assert dataset_names() == ["avazu", "url", "kddb", "kdd12", "WX"]

    def test_paper_stats_verbatim(self):
        assert PAPER_TABLE1["kdd12"] == (149_639_105, 54_686_452, 21.0)
        assert PAPER_TABLE1["WX"][2] == 434.0

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load("netflix")


class TestConditioningPreserved:
    """The trait Figures 4-5 hinge on: determined vs underdetermined."""

    @pytest.mark.parametrize("name", ["avazu", "kdd12", "WX"])
    def test_determined(self, name):
        card = CATALOG[name]
        assert card.spec.n_rows > card.spec.n_features
        assert not card.is_underdetermined
        # Matches the paper-scale dataset's character.
        assert card.paper_instances > card.paper_features

    @pytest.mark.parametrize("name", ["url", "kddb"])
    def test_underdetermined(self, name):
        card = CATALOG[name]
        assert card.spec.n_features > card.spec.n_rows
        assert card.is_underdetermined
        assert card.paper_features > card.paper_instances


class TestModelSizeRatios:
    def test_kdd12_model_much_larger_than_avazu(self):
        """Paper: kdd12's model is ~54x avazu's; analogs keep the order."""
        ratio = (CATALOG["kdd12"].spec.n_features
                 / CATALOG["avazu"].spec.n_features)
        assert ratio >= 30

    def test_wx_close_to_kdd12(self):
        ratio = (CATALOG["WX"].spec.n_features
                 / CATALOG["kdd12"].spec.n_features)
        assert 0.5 < ratio < 2.0


class TestBuiltDatasets:
    @pytest.mark.parametrize("name", ["avazu", "url"])
    def test_build_matches_spec(self, name):
        ds = load(name)
        card = CATALOG[name]
        assert ds.name == name
        assert ds.n_rows == card.spec.n_rows
        assert ds.n_features == card.spec.n_features
        assert ds.scale_bytes == pytest.approx(card.paper_size_gb * 1e9)

    def test_deterministic(self):
        a, b = load("url"), load("url")
        assert (a.X != b.X).nnz == 0


class TestRowScale:
    def test_scales_rows_not_features(self):
        ds = load("avazu", row_scale=0.1)
        assert ds.n_rows == 4000
        assert ds.n_features == 1000

    def test_scale_up(self):
        ds = load("url", row_scale=1.2)
        assert ds.n_rows == 2880

    def test_conditioning_guard(self):
        # Growing url's rows past its feature count would flip it to
        # determined — the guard must refuse.
        with pytest.raises(ValueError, match="conditioning"):
            load("url", row_scale=2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            load("avazu", row_scale=0.0)

    def test_default_is_identity(self):
        a, b = load("avazu"), load("avazu", row_scale=1.0)
        assert (a.X != b.X).nnz == 0
