"""Unit tests for repro.data.libsvm (LIBSVM IO round-trip)."""

import numpy as np
import pytest

from repro.data import SyntheticSpec, generate, read_libsvm, write_libsvm


class TestRoundTrip:
    def test_write_then_read_preserves_data(self, tmp_path):
        ds = generate(SyntheticSpec(n_rows=100, n_features=40, seed=3),
                      name="rt")
        path = tmp_path / "rt.libsvm"
        write_libsvm(ds, path)
        back = read_libsvm(path, n_features=40)
        assert back.n_rows == ds.n_rows
        assert back.n_features == 40
        assert np.array_equal(back.y, ds.y)
        assert np.allclose((back.X - ds.X).toarray(), 0.0, atol=1e-5)

    def test_read_infers_width(self, tmp_path):
        path = tmp_path / "a.libsvm"
        path.write_text("+1 1:1.0 7:2.0\n-1 3:0.5\n")
        ds = read_libsvm(path)
        assert ds.n_features == 7
        assert ds.n_rows == 2


class TestParsing:
    def test_zero_one_labels_normalized(self, tmp_path):
        path = tmp_path / "z.libsvm"
        path.write_text("1 1:1\n0 2:1\n")
        ds = read_libsvm(path)
        assert list(ds.y) == [1.0, -1.0]

    def test_skips_blank_and_comment_lines(self, tmp_path):
        path = tmp_path / "c.libsvm"
        path.write_text("# header\n\n+1 1:1\n")
        assert read_libsvm(path).n_rows == 1

    def test_malformed_feature_raises_with_location(self, tmp_path):
        path = tmp_path / "bad.libsvm"
        path.write_text("+1 1:1\n-1 notafeature\n")
        with pytest.raises(ValueError, match="bad.libsvm:2"):
            read_libsvm(path)

    def test_zero_index_rejected(self, tmp_path):
        path = tmp_path / "zero.libsvm"
        path.write_text("+1 0:1.0\n")
        with pytest.raises(ValueError, match=">= 1"):
            read_libsvm(path)

    def test_index_beyond_forced_width_rejected(self, tmp_path):
        path = tmp_path / "wide.libsvm"
        path.write_text("+1 10:1.0\n")
        with pytest.raises(ValueError, match="exceeds"):
            read_libsvm(path, n_features=5)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.libsvm"
        path.write_text("\n")
        with pytest.raises(ValueError, match="no examples"):
            read_libsvm(path)

    def test_uninterpretable_label_rejected(self, tmp_path):
        path = tmp_path / "lab.libsvm"
        path.write_text("3 1:1.0\n")
        with pytest.raises(ValueError, match="label"):
            read_libsvm(path)

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "mydata.libsvm"
        path.write_text("+1 1:1\n")
        assert read_libsvm(path).name == "mydata"
