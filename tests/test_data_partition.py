"""Unit tests for repro.data.partition."""

import numpy as np
import pytest

from repro.data import SyntheticSpec, generate, partition_rows


@pytest.fixture
def ds():
    return generate(SyntheticSpec(n_rows=103, n_features=20, seed=5))


class TestPartitionRows:
    @pytest.mark.parametrize("strategy", ["contiguous", "round_robin",
                                          "random"])
    def test_covers_all_rows(self, ds, strategy):
        parts = partition_rows(ds, 4, strategy=strategy)
        assert sum(p.n_rows for p in parts) == ds.n_rows
        total_nnz = sum(p.nnz for p in parts)
        assert total_nnz == ds.nnz

    @pytest.mark.parametrize("strategy", ["contiguous", "round_robin",
                                          "random"])
    def test_balanced(self, ds, strategy):
        parts = partition_rows(ds, 4, strategy=strategy)
        sizes = [p.n_rows for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_indices_sequential(self, ds):
        parts = partition_rows(ds, 3)
        assert [p.index for p in parts] == [0, 1, 2]

    def test_contiguous_preserves_order(self, ds):
        parts = partition_rows(ds, 2, strategy="contiguous")
        first_half = ds.X[:parts[0].n_rows]
        assert (parts[0].X != first_half).nnz == 0

    def test_random_deterministic_by_seed(self, ds):
        a = partition_rows(ds, 4, strategy="random", seed=1)
        b = partition_rows(ds, 4, strategy="random", seed=1)
        for pa, pb in zip(a, b):
            assert np.array_equal(pa.y, pb.y)

    def test_random_seed_changes_split(self, ds):
        a = partition_rows(ds, 4, strategy="random", seed=1)
        b = partition_rows(ds, 4, strategy="random", seed=2)
        assert any(not np.array_equal(pa.y, pb.y) for pa, pb in zip(a, b))

    def test_single_partition_is_whole_dataset(self, ds):
        parts = partition_rows(ds, 1)
        assert parts[0].n_rows == ds.n_rows

    def test_rejects_zero_partitions(self, ds):
        with pytest.raises(ValueError):
            partition_rows(ds, 0)

    def test_rejects_more_partitions_than_rows(self, ds):
        with pytest.raises(ValueError):
            partition_rows(ds, ds.n_rows + 1)

    def test_unknown_strategy(self, ds):
        with pytest.raises(ValueError, match="strategy"):
            partition_rows(ds, 2, strategy="zigzag")
