"""Tests for train_test_split and multi-wave task scheduling."""

import numpy as np
import pytest

from repro.core import MLlibTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate, train_test_split
from repro.engine import TreeAggregateModel
from repro.glm import Objective


@pytest.fixture
def ds():
    return generate(SyntheticSpec(n_rows=500, n_features=40, seed=6),
                    name="split-me")


class TestTrainTestSplit:
    def test_sizes(self, ds):
        train, test = train_test_split(ds, test_fraction=0.2, seed=1)
        assert test.n_rows == 100
        assert train.n_rows == 400

    def test_disjoint_and_complete(self, ds):
        train, test = train_test_split(ds, test_fraction=0.3, seed=2)
        assert train.n_rows + test.n_rows == ds.n_rows
        assert train.nnz + test.nnz == ds.nnz

    def test_names(self, ds):
        train, test = train_test_split(ds, seed=1)
        assert train.name == "split-me-train"
        assert test.name == "split-me-test"

    def test_deterministic(self, ds):
        a_train, _ = train_test_split(ds, seed=3)
        b_train, _ = train_test_split(ds, seed=3)
        assert np.array_equal(a_train.y, b_train.y)

    def test_seed_changes_split(self, ds):
        a_train, _ = train_test_split(ds, seed=3)
        b_train, _ = train_test_split(ds, seed=4)
        assert not np.array_equal(a_train.y, b_train.y)

    def test_validation(self, ds):
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(ds, test_fraction=1.0)

    def test_generalization_workflow(self, ds):
        """End-to-end: train on split, evaluate held-out AUC."""
        from repro.cluster import cluster1
        from repro.core import MLlibStarTrainer
        train, test = train_test_split(ds, test_fraction=0.25, seed=1)
        obj = Objective("hinge", "l2", 0.01)
        result = MLlibStarTrainer(obj, cluster1(executors=4),
                                  TrainerConfig(max_steps=10,
                                                seed=1)).fit(train)
        metrics = result.model.evaluate(test.X, test.y)
        assert metrics.auc > 0.7


class TestWaves:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(tasks_per_executor=0)

    def test_tree_timing_scales_with_messages(self):
        from repro.cluster import cluster1
        model = TreeAggregateModel(depth=2)
        cluster = cluster1()
        one = model.timing(cluster, 100_000, messages_per_executor=1)
        four = model.timing(cluster, 100_000, messages_per_executor=4)
        assert four.aggregator_seconds > 2 * one.aggregator_seconds

    def test_tree_timing_rejects_zero_messages(self):
        from repro.cluster import cluster1
        with pytest.raises(ValueError):
            TreeAggregateModel().timing(cluster1(), 100,
                                        messages_per_executor=0)

    def test_more_waves_more_time(self, ds, small_cluster):
        obj = Objective("hinge")
        times = {}
        for waves in (1, 4):
            cfg = TrainerConfig(max_steps=3, batch_fraction=0.2,
                                tasks_per_executor=waves, seed=1)
            result = MLlibTrainer(obj, small_cluster, cfg).fit(ds)
            times[waves] = result.history.total_seconds
        assert times[4] > times[1]

    def test_single_wave_unchanged_numerics(self, ds, small_cluster):
        """waves=1 must match the pre-feature behaviour exactly."""
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=4, batch_fraction=0.2, seed=1)
        a = MLlibTrainer(obj, small_cluster, cfg).fit(ds)
        b = MLlibTrainer(obj, small_cluster,
                         cfg.with_overrides(tasks_per_executor=1)).fit(ds)
        assert np.array_equal(a.model.weights, b.model.weights)

    def test_waves_still_converge(self, ds, small_cluster):
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=10, batch_fraction=0.2,
                            tasks_per_executor=3, seed=1)
        result = MLlibTrainer(obj, small_cluster, cfg).fit(ds)
        assert result.final_objective < result.history.objectives()[0]
