"""Unit tests for repro.data.synthetic."""

import numpy as np
import pytest

from repro.data.synthetic import SparseDataset, SyntheticSpec, generate


class TestSyntheticSpec:
    def test_underdetermined_flag(self):
        assert SyntheticSpec(n_rows=10, n_features=100).is_underdetermined
        assert not SyntheticSpec(n_rows=100, n_features=10).is_underdetermined

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpec(n_rows=0, n_features=10)
        with pytest.raises(ValueError):
            SyntheticSpec(n_rows=10, n_features=10, noise=0.6)
        with pytest.raises(ValueError):
            SyntheticSpec(n_rows=10, n_features=10, nnz_per_row=0)
        with pytest.raises(ValueError):
            SyntheticSpec(n_rows=10, n_features=10, separator_density=0)


class TestGenerate:
    def test_shape(self):
        ds = generate(SyntheticSpec(n_rows=500, n_features=50, seed=1))
        assert ds.n_rows == 500
        assert ds.n_features == 50
        assert ds.X.shape == (500, 50)
        assert ds.y.shape == (500,)

    def test_labels_are_pm_one(self):
        ds = generate(SyntheticSpec(n_rows=300, n_features=40, seed=2))
        assert set(np.unique(ds.y)) <= {-1.0, 1.0}

    def test_deterministic(self):
        spec = SyntheticSpec(n_rows=200, n_features=30, seed=9)
        a, b = generate(spec), generate(spec)
        assert (a.X != b.X).nnz == 0
        assert np.array_equal(a.y, b.y)

    def test_seed_changes_data(self):
        a = generate(SyntheticSpec(n_rows=200, n_features=30, seed=1))
        b = generate(SyntheticSpec(n_rows=200, n_features=30, seed=2))
        assert (a.X != b.X).nnz > 0

    def test_every_row_nonempty(self):
        ds = generate(SyntheticSpec(n_rows=400, n_features=60,
                                    nnz_per_row=3.0, seed=3))
        row_nnz = np.diff(ds.X.indptr)
        assert row_nnz.min() >= 1

    def test_nnz_per_row_roughly_matches(self):
        ds = generate(SyntheticSpec(n_rows=2000, n_features=5000,
                                    nnz_per_row=20.0, feature_skew=0.0,
                                    seed=4))
        mean_nnz = ds.nnz / ds.n_rows
        # Duplicate column draws merge, so observed nnz can dip slightly.
        assert 15.0 <= mean_nnz <= 21.0

    def test_feature_skew_concentrates_mass(self):
        flat = generate(SyntheticSpec(n_rows=2000, n_features=500,
                                      feature_skew=0.0, seed=5))
        skewed = generate(SyntheticSpec(n_rows=2000, n_features=500,
                                        feature_skew=1.5, seed=5))
        def top_share(ds):
            counts = np.bincount(ds.X.tocoo().col, minlength=500)
            counts = np.sort(counts)[::-1]
            return counts[:10].sum() / counts.sum()
        assert top_share(skewed) > 2 * top_share(flat)

    def test_separable_without_noise(self):
        """Zero noise => labels come exactly from a linear separator."""
        ds = generate(SyntheticSpec(n_rows=300, n_features=50, noise=0.0,
                                    seed=6))
        # We don't know w*, but the least-squares fit of y on X should
        # classify the vast majority of points if labels are truly linear.
        import scipy.sparse.linalg as spla
        w = spla.lsqr(ds.X, ds.y)[0]
        preds = np.where(ds.X @ w >= 0, 1.0, -1.0)
        assert np.mean(preds == ds.y) > 0.9

    def test_describe(self):
        ds = generate(SyntheticSpec(n_rows=100, n_features=20, seed=7))
        stats = ds.describe()
        assert stats["instances"] == 100
        assert stats["features"] == 20
        assert 0 < stats["positive_fraction"] < 1


class TestSparseDatasetValidation:
    def test_rejects_row_mismatch(self):
        ds = generate(SyntheticSpec(n_rows=50, n_features=10, seed=1))
        with pytest.raises(ValueError):
            SparseDataset(name="bad", X=ds.X, y=ds.y[:-1])

    def test_rejects_bad_labels(self):
        ds = generate(SyntheticSpec(n_rows=50, n_features=10, seed=1))
        y = ds.y.copy()
        y[0] = 0.5
        with pytest.raises(ValueError, match="labels"):
            SparseDataset(name="bad", X=ds.X, y=y)
