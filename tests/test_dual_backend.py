"""Dual (CoCoA-family) training through the full distributed stack.

``local_solver`` must be a *convergence* knob, never an execution one:
for a fixed solver the run is one deterministic computation, and every
backend / collective / sanitizer combination must reproduce it bit for
bit — histories point-for-point, weights and the recorded duality-gap
certificates exactly equal.  This extends the golden-workload battery of
``tests/test_perf_backend.py`` to the dual paths of the two SendModel
systems that support them.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

import numpy as np
import pytest

from data.make_golden import golden_workload
from repro.core import (MLlibModelAveragingTrainer, MLlibStarTrainer,
                        MLlibTrainer, TrainerConfig)
from repro.glm import Objective

DUAL_SYSTEMS = {
    "MLlib*": MLlibStarTrainer,
    "MLlib+MA": MLlibModelAveragingTrainer,
}

#: Serial reference runs, memoized per (system, solver) — every backend,
#: collective and sanitizer comparison reuses the same baseline.
_SERIAL_MEMO: dict[tuple[str, str], object] = {}


def _run(system: str, solver: str, backend: str = "serial", **overrides):
    key = (system, solver)
    plain = backend == "serial" and not overrides
    if plain and key in _SERIAL_MEMO:
        return _SERIAL_MEMO[key]
    dataset, cluster, config = golden_workload()
    config = dataclasses.replace(config, backend=backend,
                                 local_solver=solver, local_iters=2,
                                 **overrides)
    objective = Objective("hinge", "l2", 0.1)
    result = DUAL_SYSTEMS[system](objective, cluster, config).fit(dataset)
    if plain:
        _SERIAL_MEMO[key] = result
    return result


def _assert_matches_serial(system: str, solver: str, backend: str = "serial",
                           **overrides) -> None:
    serial = _run(system, solver)
    other = _run(system, solver, backend, **overrides)
    assert list(other.history.points) == list(serial.history.points)
    assert np.array_equal(other.model.weights, serial.model.weights)
    # The certificates are part of the deterministic contract too: same
    # steps, same simulated seconds, bit-equal gap/primal/dual floats.
    assert list(other.duality_gaps) == list(serial.duality_gaps)


class TestDualBackendBitIdentity:
    @pytest.mark.parametrize("system", sorted(DUAL_SYSTEMS))
    @pytest.mark.parametrize("solver", ["cocoa", "cocoa+"])
    @pytest.mark.parametrize("backend",
                             ["threads", "processes", "shm", "socket"])
    def test_backends_match_serial(self, system, solver, backend):
        _assert_matches_serial(system, solver, backend)

    @pytest.mark.parametrize("system", sorted(DUAL_SYSTEMS))
    @pytest.mark.parametrize("solver", ["cocoa", "cocoa+"])
    def test_sanitizer_does_not_perturb(self, system, solver):
        # The sanitizer freezes broadcast arrays; the dual tasks promise
        # read-only access to the shared iterate, so sanitized runs must
        # be bit-identical, not merely crash-free.
        _assert_matches_serial(system, solver, sanitize=True)

    def test_dual_runs_actually_descend(self):
        result = _run("MLlib*", "cocoa+")
        gaps = [g.gap for g in result.duality_gaps]
        assert gaps[-1] < 0.5 * gaps[0]


def _assert_same_values(system: str, solver: str, backend: str = "serial",
                        **overrides) -> None:
    # Collectives and the sparse wire re-price communication, so the
    # simulated timeline legitimately differs — but every *value* must
    # stay bit-identical: per-step objectives, final weights, and the
    # gap/primal/dual floats of each certificate.
    serial = _run(system, solver)
    other = _run(system, solver, backend, **overrides)
    assert ([(p.step, p.objective) for p in other.history.points]
            == [(p.step, p.objective) for p in serial.history.points])
    assert np.array_equal(other.model.weights, serial.model.weights)
    assert ([(g.step, g.gap, g.primal, g.dual) for g in other.duality_gaps]
            == [(g.step, g.gap, g.primal, g.dual)
                for g in serial.duality_gaps])


class TestDualCollectives:
    @pytest.mark.parametrize("collective", ["hier", "switch"])
    def test_collectives_match_flat(self, collective):
        # The delta exchange rides the same combine="sum" wire as the
        # primal gradients; hier and switch re-bracket the summation in
        # a fixed order that must reproduce the flat values exactly.
        _assert_same_values("MLlib*", "cocoa+", collective=collective)

    def test_sparse_wire_is_value_free(self):
        # --sparse-comm auto changes message *pricing* only; the dense
        # deltas must decode to the same floats.
        _assert_same_values("MLlib*", "cocoa+", sparse_comm="auto")

    def test_hier_socket_combination(self):
        _assert_same_values("MLlib*", "cocoa", backend="socket",
                            collective="hier")


class TestGapRecording:
    def test_gap_follows_eval_cadence(self):
        # Certificates are monitoring output, recorded exactly where the
        # history records objective values: every eval_every steps plus
        # the final step, with step 0 always present.
        dataset, cluster, config = golden_workload()
        config = dataclasses.replace(config, local_solver="cocoa+",
                                     eval_every=2)  # max_steps == 5
        result = MLlibStarTrainer(Objective("hinge", "l2", 0.1), cluster,
                                  config).fit(dataset)
        assert [g.step for g in result.duality_gaps] == [0, 2, 4, 5]
        history_steps = [p.step for p in result.history.points]
        assert [g.step for g in result.duality_gaps] == history_steps
        clock = {p.step: p.seconds for p in result.history.points}
        assert all(g.seconds == clock[g.step] for g in result.duality_gaps)

    def test_certificates_cost_no_simulated_time(self):
        # Gap evaluation happens in the parent off the simulated clock:
        # a dual run's timeline must price exactly the same phases
        # whether or not anyone looks at the certificates.
        a = _run("MLlib*", "cocoa+")
        b = _run("MLlib*", "cocoa+", eval_every=5)
        assert [g.step for g in b.duality_gaps] == [0, 5]
        assert b.history.total_seconds == a.history.total_seconds
        assert np.array_equal(b.model.weights, a.model.weights)


class TestDualGuards:
    def test_unsupported_system_rejects_dual_solver(self):
        dataset, cluster, config = golden_workload()
        config = dataclasses.replace(config, local_solver="cocoa")
        trainer = MLlibTrainer(Objective("hinge", "l2", 0.1), cluster,
                               config)
        with pytest.raises(ValueError, match="does not support"):
            trainer.fit(dataset)

    def test_dual_needs_l2(self):
        dataset, cluster, config = golden_workload()
        config = dataclasses.replace(config, local_solver="cocoa+")
        trainer = MLlibStarTrainer(Objective("hinge"), cluster, config)
        with pytest.raises(ValueError, match="l2"):
            trainer.fit(dataset)


class TestLinterScope:
    def test_derived_scope_covers_the_dual_task(self):
        # The backend-rule linter derives its task-function scope from
        # submit sites; the dual path's worker task must be picked up
        # automatically (no hand-maintained list to forget).
        from repro.analysis import CallGraph
        from repro.analysis.engine import collect_files, load_source
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        files = [load_source(p) for p in collect_files([src])]
        graph = CallGraph(files)
        assert ("repro.core.worker.run_dual_on_partition"
                in set(graph.task_functions()))

    def test_tree_stays_lint_clean(self):
        from repro.analysis import run_analysis
        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        report = run_analysis([src])
        assert report.violations == []
