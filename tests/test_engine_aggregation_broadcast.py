"""Unit tests for repro.engine.aggregation and repro.engine.broadcast."""

import pytest

from repro.cluster import cluster1
from repro.engine.aggregation import TreeAggregateModel
from repro.engine.broadcast import BroadcastModel


class TestTreeAggregatePlan:
    def test_depth2_sqrt_aggregators(self):
        model = TreeAggregateModel(depth=2)
        assert model.num_aggregators(8) == 2
        assert model.num_aggregators(16) == 4
        assert model.num_aggregators(1) == 1

    def test_depth1_no_aggregators(self):
        model = TreeAggregateModel(depth=1)
        assert model.num_aggregators(8) == 0
        assert model.plan(8) == {}

    def test_groups_cover_everyone(self):
        model = TreeAggregateModel(depth=2)
        plan = model.plan(8)
        assert sum(plan.values()) == 8
        assert max(plan.values()) - min(plan.values()) <= 1

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            TreeAggregateModel(depth=3)

    def test_rejects_no_executors(self):
        with pytest.raises(ValueError):
            TreeAggregateModel().num_aggregators(0)


class TestTreeAggregateTiming:
    def test_hierarchical_driver_cheaper_than_flat(self):
        """treeAggregate exists to shed driver load; verify it does."""
        cluster = cluster1(executors=16)
        m = 1_000_000
        flat = TreeAggregateModel(depth=1).timing(cluster, m)
        tree = TreeAggregateModel(depth=2).timing(cluster, m)
        assert tree.driver_seconds < flat.driver_seconds

    def test_flat_total_can_beat_tree_for_few_executors(self):
        """With 4 executors the tree's extra hop isn't obviously better;
        the timing model must at least produce finite sensible values."""
        cluster = cluster1(executors=4)
        timing = TreeAggregateModel(depth=2).timing(cluster, 10_000)
        assert timing.total_seconds > 0
        assert timing.aggregator_seconds > 0
        assert timing.driver_seconds > 0

    def test_driver_cost_scales_with_model(self):
        cluster = cluster1()
        small = TreeAggregateModel().timing(cluster, 1_000)
        large = TreeAggregateModel().timing(cluster, 1_000_000)
        assert large.total_seconds > small.total_seconds


class TestBroadcast:
    def test_serial_linear_in_executors(self):
        m = 100_000
        c8 = cluster1(executors=8)
        c16 = cluster1(executors=16)
        b = BroadcastModel(mode="serial")
        assert b.seconds(c16, m) == pytest.approx(2 * b.seconds(c8, m))

    def test_torrent_sublinear(self):
        m = 1_000_000
        b_serial = BroadcastModel(mode="serial")
        b_torrent = BroadcastModel(mode="torrent")
        c = cluster1(executors=16)
        assert b_torrent.seconds(c, m) < b_serial.seconds(c, m)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            BroadcastModel(mode="gossip")

    def test_no_executors_is_free(self):
        from repro.cluster import ClusterSpec, homogeneous_nodes
        lonely = ClusterSpec(nodes=homogeneous_nodes(1))
        assert BroadcastModel().seconds(lonely, 1000) == 0.0
