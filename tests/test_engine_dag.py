"""Tests for the mini-RDD layer (lazy dataflow + lineage recovery)."""

import numpy as np
import pytest

from repro.cluster import cluster1
from repro.engine import RddContext


@pytest.fixture
def ctx():
    return RddContext(cluster1(executors=4))


class TestParallelizeAndActions:
    def test_collect_round_trip(self, ctx):
        rdd = ctx.parallelize(range(10))
        assert sorted(rdd.collect()) == list(range(10))

    def test_count(self, ctx):
        assert ctx.parallelize(range(103)).count() == 103

    def test_partition_cap(self, ctx):
        with pytest.raises(ValueError, match="exceed"):
            ctx.parallelize(range(10), num_partitions=9)

    def test_reduce(self, ctx):
        total = ctx.parallelize(range(1, 11)).reduce(lambda a, b: a + b)
        assert total == 55

    def test_reduce_empty(self, ctx):
        with pytest.raises(ValueError):
            ctx.parallelize([]).reduce(lambda a, b: a + b)


class TestTransformations:
    def test_map(self, ctx):
        rdd = ctx.parallelize(range(6)).map(lambda x: x * x)
        assert sorted(rdd.collect()) == [0, 1, 4, 9, 16, 25]

    def test_filter(self, ctx):
        rdd = ctx.parallelize(range(10)).filter(lambda x: x % 2 == 0)
        assert rdd.count() == 5

    def test_map_partitions(self, ctx):
        rdd = ctx.parallelize(range(8)).map_partitions(
            lambda rows: [sum(rows)])
        parts = rdd.collect()
        assert len(parts) == 4
        assert sum(parts) == sum(range(8))

    def test_chained_lineage(self, ctx):
        rdd = (ctx.parallelize(range(20))
               .map(lambda x: x + 1)
               .filter(lambda x: x % 2 == 0)
               .map(lambda x: x * 10))
        assert sorted(rdd.collect()) == [20 * i for i in range(1, 11)]

    def test_laziness(self, ctx):
        """No time passes until an action runs."""
        before = ctx.now
        ctx.parallelize(range(100)).map(lambda x: x).filter(bool)
        assert ctx.now == before


class TestTimeAccounting:
    def test_actions_advance_clock(self, ctx):
        rdd = ctx.parallelize(range(1000)).map(lambda x: x,
                                               work_per_row=1e-4)
        before = ctx.now
        rdd.collect()
        assert ctx.now > before

    def test_more_work_more_time(self):
        def run(work):
            ctx = RddContext(cluster1(executors=4))
            ctx.parallelize(range(1000)).map(lambda x: x,
                                             work_per_row=work).collect()
            return ctx.now
        assert run(1e-3) > run(1e-5)

    def test_trace_has_compute_spans(self, ctx):
        ctx.parallelize(range(100)).map(lambda x: x,
                                        work_per_row=1e-4).collect()
        kinds = {s.kind for s in ctx.trace.spans}
        assert "compute" in kinds


class TestCachingAndRecovery:
    def test_cache_makes_second_action_free(self, ctx):
        rdd = ctx.parallelize(range(1000)).map(
            lambda x: x, work_per_row=1e-3).cache()
        rdd.collect()
        t_first = ctx.now
        rdd.collect()
        second_duration = ctx.now - t_first
        assert second_duration < t_first / 10

    def test_uncached_recomputes_every_action(self, ctx):
        rdd = ctx.parallelize(range(1000)).map(lambda x: x,
                                               work_per_row=1e-3)
        rdd.collect()
        t_first = ctx.now
        rdd.collect()
        assert ctx.now - t_first >= t_first * 0.5

    def test_failure_evicts_and_recovers(self, ctx):
        rdd = ctx.parallelize(range(1000)).map(
            lambda x: x + 1, work_per_row=1e-3).cache()
        expected = sorted(rdd.collect())
        evicted = ctx.fail_executor(2)
        assert evicted == 1
        # Correctness is preserved by lineage recompute...
        assert sorted(rdd.collect()) == expected

    def test_recovery_costs_time(self, ctx):
        rdd = ctx.parallelize(range(4000)).map(
            lambda x: x, work_per_row=1e-3).cache()
        rdd.collect()
        t_cached_start = ctx.now
        rdd.collect()
        cached_cost = ctx.now - t_cached_start
        ctx.fail_executor(1)
        t_recovery_start = ctx.now
        rdd.collect()
        recovery_cost = ctx.now - t_recovery_start
        assert recovery_cost > cached_cost

    def test_fail_unknown_executor(self, ctx):
        with pytest.raises(ValueError):
            ctx.fail_executor(99)


class TestTreeAggregate:
    def test_scalar_aggregate(self, ctx):
        total = ctx.parallelize(range(100)).tree_aggregate(
            0, lambda acc, x: acc + x, lambda a, b: a + b)
        assert total == sum(range(100))

    def test_vector_aggregate_like_mllib(self, ctx):
        """The MLlib GradientDescent pattern: sum vectors via seq/comb."""
        rows = [np.full(8, float(i)) for i in range(12)]
        result = ctx.parallelize(rows).tree_aggregate(
            np.zeros(8), lambda acc, v: acc + v, lambda a, b: a + b,
            result_size=8)
        assert np.allclose(result, np.full(8, sum(range(12))))

    def test_large_results_cost_more(self):
        def run(result_size):
            ctx = RddContext(cluster1(executors=8))
            ctx.parallelize(range(8)).tree_aggregate(
                0, lambda a, x: a, lambda a, b: a,
                result_size=result_size)
            return ctx.now
        assert run(5_000_000) > 10 * run(1)

    def test_driver_span_recorded(self, ctx):
        ctx.parallelize(range(8)).tree_aggregate(
            0, lambda a, x: a + x, lambda a, b: a + b, result_size=1000)
        driver_spans = ctx.trace.spans_for("driver")
        assert any(s.kind == "aggregate" for s in driver_spans)
