"""Unit tests for repro.engine.driver (BspEngine phases and traces)."""

import pytest

from repro.cluster import cluster1, cluster2
from repro.engine import BspEngine, executor_label
from repro.engine.driver import DRIVER_LABEL


@pytest.fixture
def engine():
    return BspEngine(cluster1(executors=4))


class TestComputePhase:
    def test_barrier_at_slowest(self, engine):
        duration = engine.compute_phase([1.0, 2.0, 0.5, 1.5], step=0)
        assert duration == pytest.approx(2.0)
        assert engine.now == pytest.approx(2.0)

    def test_wait_spans_for_fast_workers(self, engine):
        engine.compute_phase([1.0, 2.0, 0.5, 1.5], step=0)
        assert engine.trace.wait_seconds(executor_label(0)) == (
            pytest.approx(1.0))
        assert engine.trace.wait_seconds(executor_label(1)) == 0.0

    def test_driver_waits_through_compute(self, engine):
        engine.compute_phase([1.0, 1.0, 1.0, 1.0], step=0)
        assert engine.trace.wait_seconds(DRIVER_LABEL) == pytest.approx(1.0)

    def test_clock_accumulates(self, engine):
        engine.compute_phase([1.0] * 4, step=0)
        engine.compute_phase([2.0] * 4, step=1)
        assert engine.now == pytest.approx(3.0)

    def test_stragglers_stretch_barrier(self):
        straggly = cluster2(machines=4, straggler_sigma=0.5, seed=1)
        engine = BspEngine(straggly)
        duration = engine.compute_phase([1.0] * 4, step=0)
        # With heterogeneous static speeds already in cluster2, plus
        # transient stragglers, the barrier exceeds the base time.
        assert duration > 1.0

    def test_length_mismatch(self, engine):
        with pytest.raises(ValueError, match="durations"):
            engine.compute_phase([1.0], step=0)

    def test_negative_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.compute_phase([-1.0] * 4, step=0)


class TestAggregateUpdateBroadcast:
    def test_tree_aggregate_advances_clock(self, engine):
        before = engine.now
        dur = engine.tree_aggregate_phase(100_000, step=0)
        assert dur > 0
        assert engine.now == pytest.approx(before + dur)

    def test_tree_aggregate_emits_driver_span(self, engine):
        engine.tree_aggregate_phase(100_000, step=0)
        driver_spans = engine.trace.spans_for(DRIVER_LABEL)
        assert any(s.kind == "aggregate" for s in driver_spans)

    def test_driver_update_blocks_executors(self, engine):
        engine.driver_update_phase(0.5, step=0)
        for i in range(4):
            assert engine.trace.wait_seconds(executor_label(i)) == (
                pytest.approx(0.5))

    def test_zero_update_is_free(self, engine):
        assert engine.driver_update_phase(0.0, step=0) == 0.0
        assert len(engine.trace) == 0

    def test_broadcast_staircase(self, engine):
        engine.broadcast_phase(400_000, step=0)
        recvs = [s for s in engine.trace.spans_for(executor_label(3))
                 if s.kind == "recv"]
        assert len(recvs) == 1
        # Fourth executor's copy starts after the first three.
        assert recvs[0].start > 0


class TestAllReducePhases:
    def test_reduce_scatter_cheaper_than_driver_path(self):
        """The whole point of MLlib*: same traffic, lower latency."""
        cluster = cluster1(executors=8)
        m = 5_000_000
        star = BspEngine(cluster)
        t_star = (star.reduce_scatter_phase(m, 0)
                  + star.all_gather_phase(m, 0))
        mllib = BspEngine(cluster)
        t_mllib = (mllib.tree_aggregate_phase(m, 0)
                   + mllib.broadcast_phase(m, 0))
        assert t_star < t_mllib / 2

    def test_no_driver_activity(self):
        engine = BspEngine(cluster1(executors=4))
        engine.reduce_scatter_phase(10_000, 0)
        engine.all_gather_phase(10_000, 0)
        busy = engine.trace.busy_seconds(DRIVER_LABEL)
        assert busy == 0.0

    def test_all_executors_send(self):
        engine = BspEngine(cluster1(executors=4))
        engine.reduce_scatter_phase(10_000, 0)
        for i in range(4):
            spans = engine.trace.spans_for(executor_label(i))
            assert any(s.kind == "send" for s in spans)

    def test_reduce_scatter_includes_combine(self):
        engine = BspEngine(cluster1(executors=4))
        engine.reduce_scatter_phase(10_000, 0)
        kinds = {s.kind for s in engine.trace.spans}
        assert "aggregate" in kinds


class TestEngineValidation:
    def test_requires_executors(self):
        from repro.cluster import ClusterSpec, homogeneous_nodes
        with pytest.raises(ValueError):
            BspEngine(ClusterSpec(nodes=homogeneous_nodes(1)))
