"""Unit tests for repro.engine.shuffle and repro.engine.rdd."""

import numpy as np
import pytest

from repro.cluster import cluster1
from repro.data import SyntheticSpec, generate
from repro.engine import PartitionedDataset
from repro.engine.shuffle import ShuffleModel, exchange


class TestExchange:
    def test_routes_to_destinations(self):
        outboxes = [{1: "a->b"}, {0: "b->a"}]
        inboxes = exchange(outboxes)
        assert inboxes == [["b->a"], ["a->b"]]

    def test_source_order_preserved(self):
        outboxes = [{0: "from0"}, {0: "from1"}, {0: "from2"}]
        inboxes = exchange(outboxes, num_workers=3)
        assert inboxes[0] == ["from0", "from1", "from2"]
        assert inboxes[1] == [] and inboxes[2] == []

    def test_self_messages_allowed(self):
        inboxes = exchange([{0: "self"}])
        assert inboxes == [["self"]]

    def test_bad_destination(self):
        with pytest.raises(ValueError, match="addressed"):
            exchange([{5: "lost"}], num_workers=2)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            exchange([], num_workers=0)


class TestShuffleModel:
    def test_round_cost(self):
        cluster = cluster1()
        model = ShuffleModel()
        one = cluster.network.transfer_seconds(1000)
        assert model.round_seconds(cluster, 7, 1000) == pytest.approx(7 * one)

    def test_zero_messages_free(self):
        assert ShuffleModel().round_seconds(cluster1(), 0, 1000) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ShuffleModel().round_seconds(cluster1(), -1, 10)


class TestPartitionedDataset:
    @pytest.fixture
    def ds(self):
        return generate(SyntheticSpec(n_rows=160, n_features=20, seed=1))

    def test_one_partition_per_executor(self, ds):
        cluster = cluster1(executors=8)
        data = PartitionedDataset.load(ds, cluster)
        assert data.num_partitions == 8
        assert data.n_features == 20

    def test_total_rows_and_nnz_preserved(self, ds):
        data = PartitionedDataset.load(ds, cluster1(executors=4))
        assert sum(p.n_rows for p in data.partitions) == ds.n_rows
        assert data.total_nnz() == ds.nnz

    def test_partition_accessor(self, ds):
        data = PartitionedDataset.load(ds, cluster1(executors=4))
        assert data.partition(2).index == 2

    def test_deterministic_by_seed(self, ds):
        a = PartitionedDataset.load(ds, cluster1(), seed=7)
        b = PartitionedDataset.load(ds, cluster1(), seed=7)
        for pa, pb in zip(a.partitions, b.partitions):
            assert np.array_equal(pa.y, pb.y)

    def test_requires_executor(self, ds):
        from repro.cluster import ClusterSpec, homogeneous_nodes
        lonely = ClusterSpec(nodes=homogeneous_nodes(1))
        with pytest.raises(ValueError):
            PartitionedDataset.load(ds, lonely)
