"""Regression: failure schedules that could never fire are rejected.

A scripted crash aimed at executor ``i`` on a cluster with ``k <= i``
executors used to be silently inert — the run completed with zero
failures and the experiment measured nothing.  ``build_failure_model``
and both engines now validate the schedule against the actual cluster
size and raise ``ValueError`` up front.
"""

from __future__ import annotations

import pytest

from repro.cluster import cluster1
from repro.cluster.faults import (CompositeFailures, NoFailures,
                                  RandomFailures, ScheduledFailures,
                                  build_failure_model,
                                  parse_failure_schedule)
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.engine.driver import BspEngine
from repro.glm import Objective
from repro.ps import PetuumTrainer
from repro.ps.engine import PsEngine


def test_build_failure_model_rejects_out_of_cluster_executor():
    with pytest.raises(ValueError, match="executor 9"):
        build_failure_model(0.0, "9@3", 0, num_executors=4)


def test_build_failure_model_error_names_step_and_bounds():
    with pytest.raises(ValueError,
                       match=r"executor 5 at step 2.*only 4 executors"
                             r".*0\.\.3.*never fire"):
        build_failure_model(0.0, "5@2", 0, num_executors=4)


def test_build_failure_model_accepts_in_range_schedule():
    model = build_failure_model(0.0, "3@2", 0, num_executors=4)
    assert isinstance(model, ScheduledFailures)


def test_build_failure_model_without_cluster_size_defers():
    # No num_executors: construction-time validation is the caller's job
    # (the engines do it); parsing alone must not fail.
    model = build_failure_model(0.0, "9@3", 0)
    with pytest.raises(ValueError):
        model.validate_executors(4)
    model.validate_executors(10)


def test_composite_model_validates_every_member():
    composite = CompositeFailures([
        ScheduledFailures(parse_failure_schedule("1@2")),
        ScheduledFailures(parse_failure_schedule("7@3")),
    ])
    with pytest.raises(ValueError, match="executor 7"):
        composite.validate_executors(4)
    composite.validate_executors(8)


def test_unscripted_models_validate_cluster_size_only():
    NoFailures().validate_executors(1)
    RandomFailures(rate=0.1, seed=0).validate_executors(1)
    with pytest.raises(ValueError):
        NoFailures().validate_executors(0)


def test_bsp_engine_rejects_impossible_schedule_at_construction():
    cluster = cluster1(executors=4)
    faults = ScheduledFailures(parse_failure_schedule("6@1"))
    with pytest.raises(ValueError, match="executor 6"):
        BspEngine(cluster, faults=faults)


def test_ps_engine_rejects_impossible_schedule_at_construction():
    cluster = cluster1(executors=4)
    faults = ScheduledFailures(parse_failure_schedule("6@1"))
    with pytest.raises(ValueError, match="executor 6"):
        PsEngine(cluster, faults=faults)


@pytest.mark.parametrize("trainer_cls", [MLlibStarTrainer, PetuumTrainer])
def test_trainer_construction_fails_fast(trainer_cls):
    config = TrainerConfig(max_steps=2, failure_schedule="8@1", seed=0)
    with pytest.raises(ValueError, match="executor 8"):
        trainer_cls(Objective("hinge"), cluster1(executors=4), config)


def test_trainer_accepts_boundary_executor(tiny_dataset):
    # executor index k-1 is the last valid target; the run must both
    # construct and actually exercise the scripted crash.
    config = TrainerConfig(max_steps=3, failure_schedule="3@2",
                           batch_fraction=0.25, seed=0)
    trainer = MLlibStarTrainer(Objective("hinge"), cluster1(executors=4),
                               config)
    result = trainer.fit(tiny_dataset)
    assert len(result.failures) == 1
    assert result.failures[0].node == "executor-4"
