"""Failure-injection and boundary-condition tests across the stack."""

import numpy as np
import pytest

from repro.cluster import (ClusterSpec, LogNormalStragglers, cluster1,
                           homogeneous_nodes)
from repro.core import (MLlibStarTrainer, MLlibTrainer, TrainerConfig)
from repro.data import SyntheticSpec, generate
from repro.engine import BspEngine
from repro.glm import Objective
from repro.ps import PetuumTrainer


class TestDivergenceHandling:
    def test_diverged_flag_set_and_run_stops(self, small_cluster):
        """A wild learning rate on squared loss must blow up, set the
        diverged flag, and stop the run early instead of looping."""
        ds = generate(SyntheticSpec(n_rows=500, n_features=50, seed=2),
                      "blowup")
        cfg = TrainerConfig(max_steps=200, learning_rate=50.0,
                            local_chunk_size=250, divergence_limit=1e4,
                            seed=1)
        result = MLlibStarTrainer(Objective("squared"), small_cluster,
                                  cfg).fit(ds)
        assert result.diverged
        assert result.history.total_steps < 200

    def test_nan_objective_counts_as_divergence(self, small_cluster):
        ds = generate(SyntheticSpec(n_rows=200, n_features=30, seed=2),
                      "nan-run")
        cfg = TrainerConfig(max_steps=100, learning_rate=1e6,
                            local_chunk_size=100, seed=1)
        result = MLlibStarTrainer(Objective("squared"), small_cluster,
                                  cfg).fit(ds)
        assert result.diverged

    def test_summation_divergence_terminates(self, small_dataset,
                                             small_cluster):
        cfg = TrainerConfig(max_steps=500, learning_rate=0.2,
                            batch_fraction=0.5, local_chunk_size=1000,
                            divergence_limit=1e5, seed=1)
        result = PetuumTrainer(Objective("squared"), small_cluster,
                               cfg).fit(small_dataset)
        assert result.diverged
        assert result.history.total_steps < 500


class TestBoundaryShapes:
    def test_single_executor_cluster(self):
        """k = 1: no peers to talk to; everything must still work."""
        ds = generate(SyntheticSpec(n_rows=100, n_features=10, seed=1),
                      "solo")
        cluster = ClusterSpec(nodes=homogeneous_nodes(2))  # driver + 1
        cfg = TrainerConfig(max_steps=3, seed=1)
        result = MLlibStarTrainer(Objective("hinge"), cluster, cfg).fit(ds)
        assert result.history.total_steps == 3
        assert np.all(np.isfinite(result.model.weights))

    def test_rows_equal_executors(self, small_cluster):
        """One row per worker: minimum viable partitioning."""
        ds = generate(SyntheticSpec(n_rows=4, n_features=10, seed=1),
                      "four-rows")
        cfg = TrainerConfig(max_steps=2, seed=1)
        result = MLlibTrainer(Objective("hinge"), small_cluster, cfg).fit(ds)
        assert result.history.total_steps == 2

    def test_model_dim_equals_executors(self, small_cluster):
        """AllReduce slices of exactly one coordinate each."""
        ds = generate(SyntheticSpec(n_rows=100, n_features=4, seed=1),
                      "tiny-model")
        cfg = TrainerConfig(max_steps=2, seed=1)
        result = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                  cfg).fit(ds)
        assert np.all(np.isfinite(result.model.weights))

    def test_batch_fraction_one_is_full_gd(self, tiny_dataset,
                                           small_cluster):
        cfg = TrainerConfig(max_steps=3, batch_fraction=1.0, seed=1)
        result = MLlibTrainer(Objective("hinge"), small_cluster, cfg).fit(
            tiny_dataset)
        assert result.final_objective < result.history.objectives()[0]


class TestExtremeStragglers:
    def test_severe_stragglers_only_stretch_time(self, tiny_dataset):
        """Stragglers change the clock, never the math."""
        def run(sigma):
            cluster = ClusterSpec(
                nodes=homogeneous_nodes(5),
                stragglers=LogNormalStragglers(sigma=sigma), seed=3)
            cfg = TrainerConfig(max_steps=4, seed=1)
            return MLlibStarTrainer(Objective("hinge"), cluster, cfg).fit(
                tiny_dataset)
        calm = run(0.0)
        stormy = run(2.0)
        assert np.array_equal(calm.model.weights, stormy.model.weights)
        assert stormy.history.total_seconds > calm.history.total_seconds


class TestEngineInvariants:
    def test_clock_never_goes_backwards(self):
        engine = BspEngine(cluster1(executors=4))
        last = 0.0
        for step in range(3):
            engine.compute_phase([0.1, 0.2, 0.0, 0.3], step)
            assert engine.now >= last
            last = engine.now
            engine.tree_aggregate_phase(1000, step)
            assert engine.now >= last
            last = engine.now
            engine.broadcast_phase(1000, step)
            assert engine.now >= last
            last = engine.now

    def test_spans_within_makespan(self, tiny_dataset, small_cluster):
        cfg = TrainerConfig(max_steps=3, seed=1)
        result = MLlibTrainer(Objective("hinge"), small_cluster, cfg).fit(
            tiny_dataset)
        makespan = result.trace.end_time()
        for span in result.trace.spans:
            assert 0 <= span.start <= span.end <= makespan + 1e-9

    def test_busy_plus_wait_bounded_by_makespan(self, tiny_dataset,
                                                small_cluster):
        """No node can be active longer than the run itself."""
        cfg = TrainerConfig(max_steps=3, seed=1)
        result = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                  cfg).fit(tiny_dataset)
        makespan = result.trace.end_time()
        for node in result.trace.nodes():
            occupied = (result.trace.busy_seconds(node)
                        + result.trace.wait_seconds(node))
            assert occupied <= makespan + 1e-9


class TestPartitionedDatasetEdges:
    def test_contiguous_partitioning_used_by_fit(self, tiny_dataset,
                                                 small_cluster):
        cfg = TrainerConfig(max_steps=2, seed=1)
        result = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                  cfg).fit(tiny_dataset,
                                           partition_strategy="contiguous")
        assert result.history.total_steps == 2

    def test_warm_start_continues_from_given_weights(self, tiny_dataset,
                                                     small_cluster):
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=4, seed=1)
        first = MLlibStarTrainer(obj, small_cluster, cfg).fit(tiny_dataset)
        resumed = MLlibStarTrainer(obj, small_cluster, cfg).fit(
            tiny_dataset, initial_weights=first.model.weights)
        # Warm start begins at the previous objective, not at f(0).
        assert resumed.history.objectives()[0] == pytest.approx(
            first.final_objective)

    def test_warm_start_shape_checked(self, tiny_dataset, small_cluster):
        cfg = TrainerConfig(max_steps=1, seed=1)
        trainer = MLlibStarTrainer(Objective("hinge"), small_cluster, cfg)
        with pytest.raises(ValueError, match="initial_weights"):
            trainer.fit(tiny_dataset, initial_weights=np.zeros(3))
