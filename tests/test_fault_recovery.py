"""Fault injection and recovery across the trainers (the PR 1 tentpole).

The design contract under test: **failures change the clock, never the
weights**.  A run with injected crashes must produce bit-identical
iterates to the failure-free run — only the simulated times, the trace
and the failure log differ.  On top of that, recovery must be faithful to
each system's communication pattern: losing an AllReduce owner stalls
every peer, losing a SendGradient executor delays only the driver fan-in.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (FailureEvent, RandomFailures, RecoveryError,
                           ScheduledFailures, SlowNetworkEpisode,
                           build_failure_model, parse_failure_schedule)
from repro.core import (MLlibModelAveragingTrainer, MLlibStarTrainer,
                        MLlibTrainer, SparkMlStarTrainer, TrainerConfig)
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.ps import AngelTrainer, PetuumStarTrainer

from conftest import assert_fault_trace_invariants


def fit_pair(trainer_cls, dataset, cluster, faulty_config, **kwargs):
    """Fit the same workload with and without the config's failures."""
    obj = Objective("hinge")
    clean_config = faulty_config.with_overrides(
        failure_rate=0.0, failure_schedule=None)
    clean = trainer_cls(obj, cluster, clean_config, **kwargs).fit(dataset)
    faulty = trainer_cls(obj, cluster, faulty_config, **kwargs).fit(dataset)
    return clean, faulty


# ----------------------------------------------------------------------
# schedule grammar
# ----------------------------------------------------------------------
class TestScheduleParsing:
    def test_simple_entry(self):
        (event,) = parse_failure_schedule("3@12")
        assert event == FailureEvent(executor=3, step=12)

    def test_phase_and_repeats(self):
        events = parse_failure_schedule("1@5:reduce_scatter, 0@2x5")
        assert events[0].phase == "reduce_scatter"
        assert events[0].executor == 1 and events[0].step == 5
        assert events[1].repeats == 5
        assert events[1].phase == "compute"

    def test_bad_entries_raise(self):
        with pytest.raises(ValueError, match="failure schedule"):
            parse_failure_schedule("nonsense")
        with pytest.raises(ValueError, match="integers"):
            parse_failure_schedule("a@b")
        with pytest.raises(ValueError, match="phase"):
            parse_failure_schedule("1@2:warp_drive")

    def test_build_composes(self):
        model = build_failure_model(rate=0.1, schedule="1@2", seed=7)
        assert model.enabled
        assert model.crash_event(2, "compute", 1, 0) is not None

    def test_build_defaults_to_disabled(self):
        assert not build_failure_model().enabled


class TestFailureModels:
    def test_random_failures_are_deterministic(self):
        a = RandomFailures(rate=0.3, seed=5)
        b = RandomFailures(rate=0.3, seed=5)
        outcomes_a = [a.crash_event(s, "compute", e, 0) is not None
                      for s in range(1, 30) for e in range(4)]
        outcomes_b = [b.crash_event(s, "compute", e, 0) is not None
                      for s in range(1, 30) for e in range(4)]
        assert outcomes_a == outcomes_b
        assert any(outcomes_a) and not all(outcomes_a)

    def test_random_failures_vary_with_seed(self):
        a = RandomFailures(rate=0.3, seed=5)
        b = RandomFailures(rate=0.3, seed=6)
        outcomes = [(a.crash_event(s, "compute", e, 0) is None)
                    == (b.crash_event(s, "compute", e, 0) is None)
                    for s in range(1, 40) for e in range(4)]
        assert not all(outcomes)

    def test_scheduled_repeats_gate_attempts(self):
        model = ScheduledFailures([FailureEvent(0, 2, repeats=2)])
        assert model.crash_event(2, "compute", 0, 0) is not None
        assert model.crash_event(2, "compute", 0, 1) is not None
        assert model.crash_event(2, "compute", 0, 2) is None
        assert model.crash_event(3, "compute", 0, 0) is None

    def test_slow_network_episode(self):
        model = ScheduledFailures(
            [], slow_network=(SlowNetworkEpisode(2, 3, 4.0),))
        assert model.network_slowdown(1) == 1.0
        assert model.network_slowdown(2) == 4.0
        assert model.network_slowdown(4) == 1.0


# ----------------------------------------------------------------------
# crash at a step: clock stretches, weights don't
# ----------------------------------------------------------------------
BSP_TRAINERS = [MLlibTrainer, MLlibModelAveragingTrainer, MLlibStarTrainer]


class TestCrashAtStep:
    @pytest.mark.parametrize("trainer_cls", BSP_TRAINERS)
    def test_weights_identical_time_larger(self, trainer_cls, tiny_dataset,
                                           small_cluster, fault_config):
        clean, faulty = fit_pair(trainer_cls, tiny_dataset, small_cluster,
                                 fault_config("2@2"))
        np.testing.assert_array_equal(clean.model.weights,
                                      faulty.model.weights)
        assert faulty.history.objectives() == clean.history.objectives()
        assert faulty.history.total_seconds > clean.history.total_seconds
        assert len(faulty.failures) == 1
        assert faulty.failures[0].node == "executor-3"
        assert faulty.failures[0].step == 2
        assert faulty.recovery_seconds > 0
        assert clean.recovery_seconds == 0 and not clean.failures
        assert_fault_trace_invariants(faulty)
        assert_fault_trace_invariants(clean)

    def test_mllib_aggregate_crash_redoes_compute(self, tiny_dataset,
                                                  small_cluster,
                                                  fault_config):
        """A treeAggregate crash voids the in-memory gradient: the retry
        carries a compute span (the redo) before the resend."""
        clean, faulty = fit_pair(MLlibTrainer, tiny_dataset, small_cluster,
                                 fault_config("2@2:aggregate"))
        np.testing.assert_array_equal(clean.model.weights,
                                      faulty.model.weights)
        spans = [s for s in faulty.trace.spans_for("executor-3")
                 if s.step == 2]
        kinds = [s.kind for s in spans]
        assert "recovery" in kinds
        # redo compute happens after the recovery span
        recovery_end = max(s.end for s in spans if s.kind == "recovery")
        assert any(s.kind == "compute" and s.start >= recovery_end
                   for s in spans)
        assert_fault_trace_invariants(faulty)

    def test_multiple_scheduled_crashes(self, tiny_dataset, small_cluster,
                                        fault_config):
        clean, faulty = fit_pair(MLlibStarTrainer, tiny_dataset,
                                 small_cluster, fault_config("0@1,3@3"))
        np.testing.assert_array_equal(clean.model.weights,
                                      faulty.model.weights)
        assert {(f.node, f.step) for f in faulty.failures} == {
            ("executor-1", 1), ("executor-4", 3)}
        assert_fault_trace_invariants(faulty)

    def test_random_failures_reproducible_run_to_run(self, tiny_dataset,
                                                     small_cluster,
                                                     fault_config):
        config = fault_config(None, failure_rate=0.2, seed=9)
        obj = Objective("hinge")
        first = MLlibTrainer(obj, small_cluster, config).fit(tiny_dataset)
        second = MLlibTrainer(obj, small_cluster, config).fit(tiny_dataset)
        assert first.failures == second.failures
        assert first.failures  # rate 0.2 over 4x4 attempts: ~never empty
        assert (first.history.total_seconds
                == second.history.total_seconds)
        np.testing.assert_array_equal(first.model.weights,
                                      second.model.weights)


# ----------------------------------------------------------------------
# the AllReduce asymmetry: a lost owner stalls every peer
# ----------------------------------------------------------------------
class TestCrashDuringReduceScatter:
    def test_owner_loss_stalls_all_peers(self, tiny_dataset, small_cluster,
                                         fault_config):
        clean, faulty = fit_pair(
            MLlibStarTrainer, tiny_dataset, small_cluster,
            fault_config("1@2:reduce_scatter"))
        np.testing.assert_array_equal(clean.model.weights,
                                      faulty.model.weights)
        assert faulty.failures[0].phase == "reduce_scatter"
        # Every *other* executor pays for the owner's recovery as barrier
        # wait: their wait time strictly exceeds the clean run's.
        for i in (0, 2, 3):
            label = f"executor-{i + 1}"
            assert (faulty.trace.wait_seconds(label)
                    > clean.trace.wait_seconds(label))
        assert_fault_trace_invariants(faulty)

    def test_recovered_owner_pays_peer_refill(self, tiny_dataset,
                                              small_cluster, fault_config):
        """After the owner restarts, peers re-send their pieces: the retry
        timeline carries a recv (refill fan-in) span."""
        _, faulty = fit_pair(MLlibStarTrainer, tiny_dataset, small_cluster,
                             fault_config("1@2:reduce_scatter"))
        spans = [s for s in faulty.trace.spans_for("executor-2")
                 if s.step == 2]
        recovery_end = max(s.end for s in spans if s.kind == "recovery")
        assert any(s.kind == "recv" and s.start >= recovery_end
                   for s in spans)

    def test_sendgradient_crash_does_not_stall_compute_peers(
            self, tiny_dataset, small_cluster, fault_config):
        """The contrast case: in MLlib a compute-phase crash costs peers
        only the barrier-to-slowest time they already risk, and the driver
        fan-in shifts — there is no peer re-send."""
        _, faulty = fit_pair(MLlibTrainer, tiny_dataset, small_cluster,
                             fault_config("1@2"))
        recovered = [s for s in faulty.trace.spans_for("executor-2")
                     if s.step == 2]
        recovery_end = max(s.end for s in recovered
                           if s.kind == "recovery")
        after = sorted((s for s in recovered
                        if s.start >= recovery_end - 1e-12
                        and s.kind != "recovery"),
                       key=lambda s: s.start)
        # The retry is just the redone compute; the broadcast recv at the
        # end of the step is the only recv, exactly as in a clean run.
        assert after[0].kind == "compute"
        assert sum(1 for s in recovered if s.kind == "recv") == 1


# ----------------------------------------------------------------------
# retry exhaustion
# ----------------------------------------------------------------------
class TestRetryExhaustion:
    @pytest.mark.parametrize("trainer_cls", [MLlibTrainer, MLlibStarTrainer])
    def test_crash_past_max_retries_raises(self, trainer_cls, tiny_dataset,
                                           small_cluster, fault_config):
        config = fault_config("2@2x3", max_retries=2)
        trainer = trainer_cls(Objective("hinge"), small_cluster, config)
        with pytest.raises(RecoveryError, match="retry budget"):
            trainer.fit(tiny_dataset)

    @pytest.mark.parametrize("trainer_cls", [MLlibTrainer, MLlibStarTrainer])
    def test_budget_exactly_sufficient(self, trainer_cls, tiny_dataset,
                                       small_cluster, fault_config):
        """repeats == max_retries: the last permitted retry succeeds."""
        clean, faulty = fit_pair(trainer_cls, tiny_dataset, small_cluster,
                                 fault_config("2@2x2", max_retries=2))
        np.testing.assert_array_equal(clean.model.weights,
                                      faulty.model.weights)
        assert len(faulty.failures) == 2
        assert [f.attempt for f in faulty.failures] == [0, 1]
        assert_fault_trace_invariants(faulty)

    def test_zero_retries(self, tiny_dataset, small_cluster, fault_config):
        config = fault_config("0@1", max_retries=0)
        trainer = MLlibTrainer(Objective("hinge"), small_cluster, config)
        with pytest.raises(RecoveryError):
            trainer.fit(tiny_dataset)


# ----------------------------------------------------------------------
# checkpoint / restore
# ----------------------------------------------------------------------
class TestCheckpointRestore:
    def test_restore_resumes_identically(self, tiny_dataset, small_cluster,
                                         fault_config):
        for trainer_cls in (MLlibTrainer, MLlibStarTrainer):
            clean, faulty = fit_pair(
                trainer_cls, tiny_dataset, small_cluster,
                fault_config("1@3", recovery_strategy="checkpoint",
                             checkpoint_every=2))
            np.testing.assert_array_equal(clean.model.weights,
                                          faulty.model.weights)
            assert faulty.history.objectives() == clean.history.objectives()
            checkpoints = [s for s in faulty.trace.spans
                           if s.kind == "checkpoint"]
            assert checkpoints, "checkpoint_every=2 must write checkpoints"
            assert_fault_trace_invariants(faulty)

    def test_checkpoints_cost_time_without_failures(self, tiny_dataset,
                                                    small_cluster,
                                                    fault_config):
        clean = MLlibTrainer(
            Objective("hinge"), small_cluster,
            fault_config(None)).fit(tiny_dataset)
        ckpt = MLlibTrainer(
            Objective("hinge"), small_cluster,
            fault_config(None, recovery_strategy="checkpoint",
                         checkpoint_every=1)).fit(tiny_dataset)
        np.testing.assert_array_equal(clean.model.weights,
                                      ckpt.model.weights)
        assert ckpt.history.total_seconds > clean.history.total_seconds

    def test_restore_reads_checkpoint_not_lineage(self, small_dataset,
                                                  small_cluster,
                                                  fault_config):
        """With a checkpoint on disk and restart cost zeroed, the recovery
        downtime is exactly one checkpoint read — not a lineage rebuild."""
        result = MLlibTrainer(
            Objective("hinge"), small_cluster,
            fault_config("1@3", recovery_strategy="checkpoint",
                         checkpoint_every=2,
                         restart_seconds=0.0)).fit(small_dataset)
        ckpt = next(s for s in result.trace.spans
                    if s.kind == "checkpoint")
        recovery = [s for s in result.trace.spans if s.kind == "recovery"]
        assert len(recovery) == 1
        assert recovery[0].duration == pytest.approx(ckpt.duration)


# ----------------------------------------------------------------------
# PS-side trainers
# ----------------------------------------------------------------------
class TestParameterServerRecovery:
    @pytest.mark.parametrize("trainer_cls", [PetuumStarTrainer,
                                             AngelTrainer])
    def test_crash_preserves_weights(self, trainer_cls, tiny_dataset,
                                     small_cluster, fault_config):
        clean, faulty = fit_pair(trainer_cls, tiny_dataset, small_cluster,
                                 fault_config("2@2"))
        np.testing.assert_array_equal(clean.model.weights,
                                      faulty.model.weights)
        assert faulty.history.total_seconds > clean.history.total_seconds
        assert len(faulty.failures) == 1
        assert faulty.failures[0].node == "worker-3"
        assert_fault_trace_invariants(faulty)

    def test_ps_retry_exhaustion(self, tiny_dataset, small_cluster,
                                 fault_config):
        config = fault_config("0@2x4", max_retries=1)
        trainer = PetuumStarTrainer(Objective("hinge"), small_cluster,
                                    config)
        with pytest.raises(RecoveryError, match="retry budget"):
            trainer.fit(tiny_dataset)


# ----------------------------------------------------------------------
# slow-network episodes
# ----------------------------------------------------------------------
class TestSlowNetwork:
    def test_episode_stretches_communication(self, tiny_dataset,
                                             small_cluster, fault_config):
        obj = Objective("hinge")
        clean = MLlibStarTrainer(obj, small_cluster,
                                 fault_config(None)).fit(tiny_dataset)
        trainer = MLlibStarTrainer(obj, small_cluster, fault_config(None))
        trainer.faults = ScheduledFailures(
            [], slow_network=(SlowNetworkEpisode(2, 3, 5.0),))
        slow = trainer.fit(tiny_dataset)
        np.testing.assert_array_equal(clean.model.weights,
                                      slow.model.weights)
        assert slow.history.total_seconds > clean.history.total_seconds
        assert not slow.failures


# ----------------------------------------------------------------------
# satellite 4: clear error when num_executors > model_size
# ----------------------------------------------------------------------
class TestTooManyExecutors:
    def narrow_dataset(self):
        return generate(SyntheticSpec(n_rows=64, n_features=3,
                                      nnz_per_row=2.0, seed=1),
                        name="narrow")

    def test_mllib_star_raises_clearly(self, small_cluster):
        trainer = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                   TrainerConfig(max_steps=1))
        with pytest.raises(ValueError, match="num_executors > model_size"):
            trainer.fit(self.narrow_dataset())

    def test_spark_ml_star_raises_clearly(self, small_cluster):
        trainer = SparkMlStarTrainer(Objective("squared"), small_cluster,
                                     TrainerConfig(max_steps=1))
        with pytest.raises(ValueError, match="num_executors > model_size"):
            trainer.fit(self.narrow_dataset())

    def test_engine_level_guard(self, small_cluster):
        from repro.engine import BspEngine
        engine = BspEngine(small_cluster)
        with pytest.raises(ValueError, match="num_executors > model_size"):
            engine.reduce_scatter_phase(3, step=1)
        with pytest.raises(ValueError, match="num_executors > model_size"):
            engine.all_gather_phase(2, step=1)

    def test_mllib_unaffected(self, small_cluster):
        """SendGradient has no per-owner partitioning: small models fine."""
        result = MLlibTrainer(Objective("hinge"), small_cluster,
                              TrainerConfig(max_steps=2)).fit(
            self.narrow_dataset())
        assert result.history.total_steps == 2
