"""Dual local solvers: conjugates, coordinate updates, certificates.

The CoCoA family is only trustworthy if three layers each hold exactly:

* the **conjugates** really are the losses' Fenchel conjugates
  (Fenchel-Young must hold for every feasible dual value);
* the **coordinate update** really solves its one-dimensional
  subproblem (no cheaper direction exists inside the feasible box);
* the **certificate** really certifies: the duality gap is non-negative
  for *any* iterate and feasible dual vector, and the per-superstep
  report is monotone in the quantities weak duality makes monotone.

On top of that, the fast CSR epoch kernel must be a pure speed change:
bit-for-bit the retained reference body on every input (same rule as the
primal kernels in ``tests/test_perf_kernels.py`` — no tolerances).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import cluster1
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.core.worker import run_dual_on_partition
from repro.data import Partition, SyntheticSpec, generate
from repro.glm import (DUAL_LOSSES, Objective, certified_gap,
                       dual_local_solve, get_dual_loss, get_loss,
                       make_dual_spec, require_dual_capable,
                       use_reference_kernels)

DUAL_CAPABLE = sorted(DUAL_LOSSES)


def make_problem(n_rows: int, n_features: int, density: float, seed: int,
                 loss: str):
    X = sp.random(n_rows, n_features, density=density, format="csr",
                  random_state=np.random.RandomState(seed))
    X.sum_duplicates()
    X.sort_indices()
    rng = np.random.default_rng(seed)
    if loss == "squared":
        y = rng.normal(size=n_rows)
    else:
        y = np.where(rng.random(n_rows) < 0.5, -1.0, 1.0)
    w0 = rng.standard_normal(n_features) * 0.1
    return X, y, w0


def feasible_alpha(loss: str, y: np.ndarray,
                   rng: np.random.Generator) -> np.ndarray:
    """A random dual vector inside the loss's feasible box."""
    n = y.shape[0]
    if loss == "hinge":
        return rng.uniform(0.0, 1.0, size=n) * y
    if loss == "logistic":
        return rng.uniform(1e-6, 1.0 - 1e-6, size=n) * y
    if loss == "squared_hinge":
        return rng.uniform(0.0, 3.0, size=n) * y
    return rng.normal(size=n)  # squared: unconstrained


problem_params = st.tuples(
    st.integers(min_value=1, max_value=60),       # rows
    st.integers(min_value=4, max_value=120),      # features
    st.floats(min_value=0.05, max_value=0.6),     # density
    st.integers(min_value=0, max_value=10_000),   # seed
)


# ----------------------------------------------------------------------
class TestConjugates:
    @given(loss=st.sampled_from(DUAL_CAPABLE),
           margin=st.floats(min_value=-5.0, max_value=5.0),
           frac=st.floats(min_value=1e-6, max_value=1.0 - 1e-6),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=200, deadline=None)
    def test_fenchel_young_inequality(self, loss, margin, frac, seed):
        # l(m, y) + l*(-a, y) >= -m * a for every feasible a: violating
        # this would mean the "conjugate" is not a conjugate and the
        # "certificate" could go negative on a converged run.
        rng = np.random.default_rng(seed)
        L, D = get_loss(loss), get_dual_loss(loss)
        y = float(rng.normal()) if loss == "squared" else \
            (1.0 if seed % 2 else -1.0)
        if loss in ("hinge", "logistic"):
            a = frac * y
        elif loss == "squared_hinge":
            a = 5.0 * frac * y
        else:
            a = (2.0 * frac - 1.0) * 4.0
        lhs = (L.value(np.array([margin]), np.array([y]))
               + D.conjugate(np.array([a]), np.array([y]))[0])
        assert lhs >= -margin * a - 1e-9

    def test_unknown_loss_rejected(self):
        with pytest.raises(KeyError, match="no implemented conjugate"):
            get_dual_loss("huber")

    def test_registry_names_match_primal_losses(self):
        for name in DUAL_CAPABLE:
            assert get_loss(name).name == name
            assert get_dual_loss(name).name == name


# ----------------------------------------------------------------------
class TestCoordinateUpdate:
    @given(loss=st.sampled_from(DUAL_CAPABLE),
           margin=st.floats(min_value=-4.0, max_value=4.0),
           frac=st.floats(min_value=0.0, max_value=1.0),
           q=st.floats(min_value=0.0, max_value=10.0),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=200, deadline=None)
    def test_delta_minimizes_the_coordinate_subproblem(self, loss, margin,
                                                       frac, q, seed):
        # The SDCA step must solve
        #   min_d  l*(-(a + d)) + margin * d + q/2 * d^2
        # over the feasible box: no probe point inside the box may be
        # cheaper (up to float tolerance).
        rng = np.random.default_rng(seed)
        D = get_dual_loss(loss)
        y = float(rng.normal()) if loss == "squared" else \
            (1.0 if seed % 2 else -1.0)
        if loss in ("hinge", "logistic"):
            a = (frac * 0.98 + 0.01) * y
        elif loss == "squared_hinge":
            a = 4.0 * frac * y
        else:
            a = (2.0 * frac - 1.0) * 3.0
        if loss == "hinge" and q == 0.0:
            q = 1e-3  # boundary solution exercised separately below
        d = D.delta(margin, a, y, q)

        def phi(dd: float) -> float:
            val = D.conjugate(np.array([a + dd]), np.array([y]))[0]
            return float(val) + margin * dd + 0.5 * q * dd * dd

        # The step itself must stay feasible.
        b_new = (a + d) * y
        if loss == "hinge":
            assert -1e-9 <= b_new <= 1.0 + 1e-9
        elif loss == "logistic":
            assert 0.0 < b_new < 1.0
        elif loss == "squared_hinge":
            assert b_new >= -1e-9
        base = phi(d)
        span = max(1.0, abs(d))
        for eps in (1e-4 * span, 1e-2 * span, 0.3 * span):
            for probe in (d + eps, d - eps):
                bp = (a + probe) * y
                if loss == "hinge" and not 0.0 <= bp <= 1.0:
                    continue
                if loss == "logistic" and not 0.0 < bp < 1.0:
                    continue
                if loss == "squared_hinge" and bp < 0.0:
                    continue
                assert base <= phi(probe) + 1e-7 * max(1.0, abs(base))

    def test_hinge_empty_row_pushes_to_the_box_corner(self):
        # q == 0 (an all-zero row): the subproblem is linear in b, so
        # the update must land exactly on b = 1.
        D = get_dual_loss("hinge")
        for y in (1.0, -1.0):
            d = D.delta(0.0, 0.2 * y, y, 0.0)
            assert (0.2 * y + d) * y == pytest.approx(1.0)

    def test_squared_update_is_exact_in_one_step(self):
        # For squared loss the subproblem is quadratic: after one update
        # the derivative a + margin - y + q*d_total must vanish.
        D = get_dual_loss("squared")
        margin, a, y, q = 0.7, -0.3, 1.2, 2.5
        d = D.delta(margin, a, y, q)
        assert (a + d) - y + margin + q * d == pytest.approx(0.0, abs=1e-12)

    def test_logistic_newton_solves_the_stationarity_condition(self):
        D = get_dual_loss("logistic")
        for seed in range(20):
            rng = np.random.default_rng(seed)
            y = 1.0 if seed % 2 else -1.0
            a = float(rng.uniform(0.05, 0.95)) * y
            margin = float(rng.normal()) * 2.0
            q = float(rng.uniform(0.0, 5.0))
            d = D.delta(margin, a, y, q)
            b = a * y
            t = b + d * y
            g = np.log(t / (1.0 - t)) + y * margin + q * (t - b)
            assert abs(g) < 1e-6


# ----------------------------------------------------------------------
class TestSolverSpec:
    def test_family_defaults(self):
        cocoa = make_dual_spec("cocoa", None, 2, 100, 4)
        assert cocoa.gamma == pytest.approx(0.25)
        assert cocoa.sigma_prime == pytest.approx(1.0)
        plus = make_dual_spec("cocoa+", None, 2, 100, 4)
        assert plus.gamma == 1.0
        assert plus.sigma_prime == pytest.approx(4.0)

    def test_explicit_gamma_scales_sigma(self):
        spec = make_dual_spec("cocoa+", 0.5, 1, 10, 8)
        assert spec.gamma == 0.5
        assert spec.sigma_prime == pytest.approx(4.0)

    def test_invalid_inputs_raise(self):
        with pytest.raises(ValueError, match="unknown dual solver"):
            make_dual_spec("sdca", None, 1, 10, 2)
        with pytest.raises(ValueError, match="at least 1"):
            make_dual_spec("cocoa", None, 0, 10, 2)
        with pytest.raises(ValueError, match="gamma"):
            make_dual_spec("cocoa", -0.5, 1, 10, 2)
        with pytest.raises(ValueError, match="worker"):
            make_dual_spec("cocoa", None, 1, 10, 0)

    def test_require_dual_capable(self):
        require_dual_capable(Objective("hinge", "l2", 0.1))
        with pytest.raises(ValueError, match="l2"):
            require_dual_capable(Objective("hinge"))
        with pytest.raises(ValueError, match="l2"):
            require_dual_capable(Objective("hinge", "l1", 0.1))


# ----------------------------------------------------------------------
class TestDualLocalSolveBitIdentity:
    @given(params=problem_params,
           loss=st.sampled_from(DUAL_CAPABLE),
           epochs=st.integers(min_value=1, max_value=3),
           solver=st.sampled_from(["cocoa", "cocoa+"]),
           workers=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_fast_equals_reference(self, params, loss, epochs, solver,
                                   workers):
        n, m, density, seed = params
        X, y, w0 = make_problem(n, m, density, seed, loss)
        objective = Objective(loss, "l2", 0.1)
        rng = np.random.default_rng(seed + 7)
        alpha0 = feasible_alpha(loss, y, rng) * 0.5
        spec = make_dual_spec(solver, None, epochs, 4 * n, workers)
        rng_fast = np.random.default_rng(seed + 1)
        rng_ref = np.random.default_rng(seed + 1)
        dw_f, a_f, st_f = dual_local_solve(objective, w0, X, y, alpha0,
                                           spec, rng_fast)
        with use_reference_kernels():
            dw_r, a_r, st_r = dual_local_solve(objective, w0, X, y,
                                               alpha0, spec, rng_ref)
        assert np.array_equal(dw_f, dw_r)
        assert np.array_equal(a_f, a_r)
        assert st_f == st_r
        # Both paths draw the same permutations: one per epoch.
        assert (rng_fast.bit_generator.state
                == rng_ref.bit_generator.state)

    def test_inputs_are_not_mutated(self):
        # The backend contract: w may be a read-only shared view and the
        # dual block is parent-owned state.
        X, y, w0 = make_problem(30, 10, 0.4, 0, "hinge")
        objective = Objective("hinge", "l2", 0.1)
        w0.setflags(write=False)
        alpha0 = np.zeros(30)
        alpha0.setflags(write=False)
        spec = make_dual_spec("cocoa+", None, 2, 30, 2)
        dual_local_solve(objective, w0, X, y, alpha0, spec,
                         np.random.default_rng(0))
        assert np.array_equal(alpha0, np.zeros(30))

    def test_block_shape_mismatch_raises(self):
        X, y, w0 = make_problem(30, 10, 0.4, 0, "hinge")
        objective = Objective("hinge", "l2", 0.1)
        spec = make_dual_spec("cocoa", None, 1, 30, 2)
        with pytest.raises(ValueError, match="dual block"):
            dual_local_solve(objective, w0, X, y, np.zeros(29), spec,
                             np.random.default_rng(0))


# ----------------------------------------------------------------------
class TestCertificates:
    @given(params=problem_params,
           loss=st.sampled_from(DUAL_CAPABLE),
           alpha_seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=80, deadline=None)
    def test_gap_is_nonnegative_for_any_feasible_pair(self, params, loss,
                                                      alpha_seed):
        # Weak duality: P(w) - D(alpha) >= 0 for ANY w and feasible
        # alpha, not just solver iterates — this is what makes the gap a
        # certificate rather than an estimate.
        n, m, density, seed = params
        X, y, w0 = make_problem(n, m, density, seed, loss)
        objective = Objective(loss, "l2", 0.1)
        alpha = feasible_alpha(loss, y, np.random.default_rng(alpha_seed))
        assert objective.duality_gap(w0, X, y, alpha) >= -1e-9

    @pytest.mark.parametrize("loss", DUAL_CAPABLE)
    def test_gap_vanishes_at_the_optimum(self, loss):
        # Drive a single-block solver hard; the certificate must go to
        # ~0, pinning the primal-dual scaling (a factor-of-lambda bug
        # would leave a permanent gap).
        X, y, w0 = make_problem(80, 12, 0.4, 5, loss)
        objective = Objective(loss, "l2", 0.1)
        spec = make_dual_spec("cocoa+", None, 20, 80, 1)
        rng = np.random.default_rng(3)
        w = np.zeros(12)
        alpha = np.zeros(80)
        for _ in range(10):
            dw, alpha, _ = dual_local_solve(objective, w, X, y, alpha,
                                            spec, rng)
            w = w + dw
        gap = objective.duality_gap(w, X, y, alpha)
        assert 0.0 <= gap + 1e-12 and gap < 1e-6

    def test_certified_gap_validates_block_count(self):
        X, y, _ = make_problem(20, 8, 0.4, 0, "hinge")
        part = Partition(index=0, X=X, y=y)
        ds = generate(SyntheticSpec(n_rows=20, n_features=8,
                                    nnz_per_row=3.0, noise=0.1, seed=0))
        with pytest.raises(ValueError, match="dual blocks"):
            certified_gap(Objective("hinge", "l2", 0.1), np.zeros(8),
                          [part], [np.zeros(20), np.zeros(20)], ds)


# ----------------------------------------------------------------------
class TestTrainingCertificate:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           solver=st.sampled_from(["cocoa", "cocoa+"]),
           loss=st.sampled_from(DUAL_CAPABLE),
           local_iters=st.integers(min_value=1, max_value=3),
           executors=st.sampled_from([2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_gap_report_on_convex_workloads(self, seed, solver, loss,
                                            local_iters, executors):
        # Per-superstep properties of the convergence report on convex
        # (L2-regularized) workloads:
        #  1. every recorded gap is non-negative (weak duality);
        #  2. the dual objective never decreases (local SDCA ascends and
        #     both gamma regimes — averaging via Jensen, adding via the
        #     sigma' = gamma*K safeguard — preserve ascent);
        #  3. the *certified suboptimality bound* min-primal-so-far
        #     minus current-dual is non-increasing at every superstep
        #     and non-negative.  (The raw gap P(w_t) - D(alpha_t) can
        #     wobble because the primal iterate oscillates; the
        #     certificate built from the monotone pieces cannot.)
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(40, 160))
        feats = int(rng.integers(8, 40))
        dataset = generate(SyntheticSpec(
            n_rows=rows, n_features=feats,
            nnz_per_row=float(min(feats, 6)), noise=0.05, seed=seed))
        objective = Objective(loss, "l2", float(rng.choice([0.05, 0.2])))
        config = TrainerConfig(max_steps=6, seed=seed, local_solver=solver,
                               local_iters=local_iters)
        trainer = MLlibStarTrainer(objective, cluster1(executors=executors),
                                   config)
        result = trainer.fit(dataset)
        records = result.duality_gaps
        assert [g.step for g in records] == list(range(7))
        assert all(g.gap >= -1e-9 for g in records)
        assert all(g.gap == pytest.approx(g.primal - g.dual, abs=1e-12)
                   for g in records)
        duals = [g.dual for g in records]
        assert all(d2 >= d1 - 1e-12 for d1, d2 in zip(duals, duals[1:]))
        best_primal = np.minimum.accumulate([g.primal for g in records])
        bound = best_primal - np.array(duals)
        assert np.all(bound >= -1e-9)
        assert np.all(np.diff(bound) <= 1e-12)
        # The report converges: the final certificate improves on the
        # step-0 one (alpha = 0 is a deliberately weak certificate).
        assert bound[-1] < bound[0]

    def test_primal_runs_report_no_gaps(self):
        dataset = generate(SyntheticSpec(n_rows=60, n_features=12,
                                         nnz_per_row=4.0, noise=0.05,
                                         seed=1))
        config = TrainerConfig(max_steps=2, seed=1)
        result = MLlibStarTrainer(Objective("hinge", "l2", 0.1),
                                  cluster1(executors=2), config).fit(dataset)
        assert result.duality_gaps == ()


# ----------------------------------------------------------------------
class TestWorkerGuards:
    def test_empty_partition_raises_with_its_index(self):
        part = Partition(index=3, X=sp.csr_matrix((0, 6)), y=np.zeros(0))
        spec = make_dual_spec("cocoa+", None, 1, 10, 2)
        with pytest.raises(ValueError, match="partition 3 is empty"):
            run_dual_on_partition(part, np.zeros(6),
                                  Objective("hinge", "l2", 0.1), spec,
                                  np.zeros(0), np.random.default_rng(0))
