"""Unit tests for repro.glm.evaluation and SquaredHingeLoss."""

import numpy as np
import pytest

from repro.glm import (SquaredHingeLoss, evaluate_binary, get_loss, roc_auc)


class TestSquaredHinge:
    def test_zero_beyond_margin(self):
        loss = SquaredHingeLoss()
        assert loss.value(np.array([2.0]), np.array([1.0])) == 0.0

    def test_value_at_zero_margin(self):
        loss = SquaredHingeLoss()
        assert loss.value(np.array([0.0]), np.array([1.0])) == (
            pytest.approx(0.5))

    def test_gradient_continuous_at_hinge_point(self):
        """The reason spark.ml uses it: differentiable at y*margin = 1."""
        loss = SquaredHingeLoss()
        eps = 1e-7
        below = loss.gradient_factor(np.array([1.0 - eps]),
                                     np.array([1.0]))[0]
        above = loss.gradient_factor(np.array([1.0 + eps]),
                                     np.array([1.0]))[0]
        assert abs(below - above) < 1e-5

    @pytest.mark.parametrize("margin,y", [(-1.0, 1.0), (0.5, 1.0),
                                          (0.5, -1.0), (2.0, 1.0)])
    def test_matches_finite_difference(self, margin, y):
        loss = SquaredHingeLoss()
        eps = 1e-6
        up = loss.value(np.array([margin + eps]), np.array([y]))
        down = loss.value(np.array([margin - eps]), np.array([y]))
        numeric = (up - down) / (2 * eps)
        analytic = loss.gradient_factor(np.array([margin]),
                                        np.array([y]))[0]
        assert analytic == pytest.approx(numeric, abs=1e-5)

    def test_registered(self):
        assert isinstance(get_loss("squared_hinge"), SquaredHingeLoss)


class TestRocAuc:
    def test_perfect_ranking(self):
        margins = np.array([-2.0, -1.0, 1.0, 2.0])
        y = np.array([-1.0, -1.0, 1.0, 1.0])
        assert roc_auc(margins, y) == 1.0

    def test_inverted_ranking(self):
        margins = np.array([2.0, 1.0, -1.0, -2.0])
        y = np.array([-1.0, -1.0, 1.0, 1.0])
        assert roc_auc(margins, y) == 0.0

    def test_random_ranking_is_half(self):
        rng = np.random.default_rng(0)
        margins = rng.normal(size=4000)
        y = np.where(rng.random(4000) < 0.5, 1.0, -1.0)
        assert roc_auc(margins, y) == pytest.approx(0.5, abs=0.03)

    def test_ties_give_half_credit(self):
        margins = np.zeros(4)
        y = np.array([1.0, 1.0, -1.0, -1.0])
        assert roc_auc(margins, y) == pytest.approx(0.5)

    def test_single_class_returns_half(self):
        assert roc_auc(np.array([1.0, 2.0]), np.array([1.0, 1.0])) == 0.5

    def test_invariant_to_monotone_transform(self):
        rng = np.random.default_rng(1)
        margins = rng.normal(size=200)
        y = np.where(rng.random(200) < 0.4, 1.0, -1.0)
        assert roc_auc(margins, y) == pytest.approx(
            roc_auc(np.tanh(margins), y))


class TestEvaluateBinary:
    def test_perfect_classifier(self):
        margins = np.array([-1.0, -2.0, 1.0, 2.0])
        y = np.array([-1.0, -1.0, 1.0, 1.0])
        m = evaluate_binary(margins, y)
        assert m.accuracy == 1.0
        assert m.precision == 1.0
        assert m.recall == 1.0
        assert m.f1 == 1.0
        assert m.auc == 1.0
        assert m.positives == 2 and m.negatives == 2

    def test_all_positive_predictions(self):
        margins = np.array([1.0, 1.0, 1.0, 1.0])
        y = np.array([1.0, 1.0, -1.0, -1.0])
        m = evaluate_binary(margins, y)
        assert m.accuracy == 0.5
        assert m.precision == 0.5
        assert m.recall == 1.0

    def test_no_positive_predictions(self):
        margins = -np.ones(4)
        y = np.array([1.0, 1.0, -1.0, -1.0])
        m = evaluate_binary(margins, y)
        assert m.precision == 0.0
        assert m.recall == 0.0
        assert m.f1 == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            evaluate_binary(np.zeros(3), np.ones(4))

    def test_bad_labels(self):
        with pytest.raises(ValueError, match="labels"):
            evaluate_binary(np.zeros(2), np.array([0.0, 2.0]))

    def test_describe(self):
        m = evaluate_binary(np.array([1.0, -1.0]), np.array([1.0, -1.0]))
        assert "acc=1.000" in m.describe()

    def test_model_evaluate_integration(self):
        from repro.data import SyntheticSpec, generate
        from repro.glm import GLMModel, Objective
        ds = generate(SyntheticSpec(n_rows=200, n_features=30, noise=0.0,
                                    seed=5))
        import scipy.sparse.linalg as spla
        w = spla.lsqr(ds.X, ds.y)[0]
        model = GLMModel(weights=w, objective=Objective("hinge"))
        metrics = model.evaluate(ds.X, ds.y)
        assert metrics.accuracy > 0.9
        assert metrics.auc > 0.95
