"""Unit tests for repro.glm.lazy_update (ScaledVector)."""

import numpy as np
import pytest

from repro.glm.lazy_update import ScaledVector


class TestScaledVector:
    def test_roundtrip(self):
        v = np.array([1.0, 2.0, 3.0])
        sv = ScaledVector(v)
        assert np.allclose(sv.to_array(), v)

    def test_copies_input(self):
        v = np.array([1.0, 2.0])
        sv = ScaledVector(v)
        v[0] = 99.0
        assert sv.to_array()[0] == 1.0

    def test_decay_is_scalar_mult(self):
        sv = ScaledVector(np.array([2.0, 4.0]))
        sv.decay(0.5)
        assert np.allclose(sv.to_array(), [1.0, 2.0])

    def test_decay_is_o1_dense_ops(self):
        sv = ScaledVector(np.ones(1000))
        before = sv.dense_ops
        sv.decay(0.9)
        assert sv.dense_ops == before  # no dense coordinates touched

    def test_axpy_sparse_through_scale(self):
        sv = ScaledVector(np.array([1.0, 1.0, 1.0]))
        sv.decay(0.5)
        sv.axpy_sparse(2.0, np.array([1]), np.array([3.0]))
        # logical: 0.5*[1,1,1] then +2*3 at index 1 => [0.5, 6.5, 0.5]
        assert np.allclose(sv.to_array(), [0.5, 6.5, 0.5])

    def test_axpy_sparse_counts_touched_coords(self):
        sv = ScaledVector(np.zeros(100))
        sv.axpy_sparse(1.0, np.arange(7), np.ones(7))
        assert sv.dense_ops == 7

    def test_axpy_empty_indices_noop(self):
        sv = ScaledVector(np.ones(4))
        sv.axpy_sparse(5.0, np.array([], dtype=int), np.array([]))
        assert np.allclose(sv.to_array(), np.ones(4))
        assert sv.dense_ops == 0

    def test_axpy_dense(self):
        sv = ScaledVector(np.array([1.0, 2.0]))
        sv.decay(2.0)
        sv.axpy_dense(1.0, np.array([10.0, 10.0]))
        assert np.allclose(sv.to_array(), [12.0, 14.0])
        assert sv.dense_ops == 2

    def test_dot_sparse(self):
        sv = ScaledVector(np.array([1.0, 2.0, 3.0]))
        sv.decay(2.0)
        got = sv.dot_sparse(np.array([0, 2]), np.array([1.0, 1.0]))
        assert got == pytest.approx(2.0 * (1.0 + 3.0))

    def test_rebase_preserves_value(self):
        sv = ScaledVector(np.array([1.0, -2.0]))
        for _ in range(200):
            sv.decay(0.9)  # drives scale below threshold, forcing rebases
        expected = np.array([1.0, -2.0]) * 0.9 ** 200
        assert np.allclose(sv.to_array(), expected)
        assert sv.scale >= ScaledVector.REBASE_THRESHOLD

    def test_zero_decay_zeroes_vector(self):
        sv = ScaledVector(np.array([1.0, 2.0]))
        sv.decay(0.0)
        assert np.allclose(sv.to_array(), [0.0, 0.0])
        # Future sparse updates still work.
        sv.axpy_sparse(1.0, np.array([0]), np.array([5.0]))
        assert np.allclose(sv.to_array(), [5.0, 0.0])


class TestEquivalenceWithEagerUpdates:
    def test_sequence_matches_dense_reference(self):
        """A realistic SGD-like sequence must match the naive dense math."""
        rng = np.random.default_rng(3)
        dim = 50
        w_ref = rng.normal(size=dim)
        sv = ScaledVector(w_ref)
        for _ in range(100):
            decay = 1.0 - 0.01 * rng.random()
            idx = rng.choice(dim, size=5, replace=False)
            vals = rng.normal(size=5)
            w_ref = decay * w_ref
            w_ref[idx] += -0.1 * vals
            sv.decay(decay)
            sv.axpy_sparse(-0.1, idx, vals)
        assert np.allclose(sv.to_array(), w_ref)

    def test_lazy_is_cheaper_than_eager(self):
        """dense_ops accounting: lazy decay saves dim work per update."""
        dim = 1000
        lazy = ScaledVector(np.ones(dim))
        eager = ScaledVector(np.ones(dim))
        for _ in range(50):
            lazy.decay(0.99)
            lazy.axpy_sparse(-0.1, np.arange(5), np.ones(5))
            eager.axpy_dense(-0.01, eager.to_array())  # explicit decay
            eager.axpy_sparse(-0.1, np.arange(5), np.ones(5))
        assert lazy.dense_ops < eager.dense_ops / 10
