"""Unit tests for repro.glm.lbfgs against analytic problems."""

import numpy as np
import pytest

from repro.glm.lbfgs import (LbfgsState, armijo_line_search, minimize)


def quadratic(A, b):
    """f(w) = 0.5 w'Aw - b'w with gradient Aw - b."""
    def fg(w):
        return 0.5 * float(w @ A @ w) - float(b @ w), A @ w - b
    return fg


def rosenbrock(w):
    x, y = w
    f = (1 - x) ** 2 + 100 * (y - x * x) ** 2
    g = np.array([
        -2 * (1 - x) - 400 * x * (y - x * x),
        200 * (y - x * x),
    ])
    return f, g


class TestLbfgsState:
    def test_empty_state_gives_steepest_descent(self):
        state = LbfgsState()
        grad = np.array([1.0, -2.0])
        assert np.allclose(state.direction(grad), -grad)

    def test_push_rejects_negative_curvature(self):
        state = LbfgsState()
        assert not state.push(np.array([1.0, 0.0]), np.array([-1.0, 0.0]))
        assert len(state) == 0

    def test_push_accepts_positive_curvature(self):
        state = LbfgsState()
        assert state.push(np.array([1.0, 0.0]), np.array([2.0, 0.0]))
        assert len(state) == 1

    def test_memory_bounded(self):
        state = LbfgsState(memory=3)
        for i in range(10):
            state.push(np.array([1.0 + i, 0.0]), np.array([1.0, 0.1 * i]))
        assert len(state) == 3

    def test_direction_is_descent(self):
        """The two-loop direction must satisfy d . grad < 0."""
        rng = np.random.default_rng(0)
        state = LbfgsState(memory=5)
        A = np.diag([1.0, 10.0, 100.0])
        w = rng.normal(size=3)
        for _ in range(5):
            grad = A @ w
            d = state.direction(grad)
            assert float(d @ grad) < 0
            step = 0.1
            new_w = w + step * d
            state.push(new_w - w, A @ new_w - grad)
            w = new_w

    def test_quadratic_direction_approaches_newton(self):
        """After enough updates on a quadratic, the direction is close to
        the Newton step (that is the whole point of BFGS)."""
        A = np.diag([1.0, 50.0])
        b = np.array([1.0, 1.0])
        fg = quadratic(A, b)
        result = minimize(fg, np.zeros(2), max_iters=50)
        assert result.converged
        assert np.allclose(result.w, np.linalg.solve(A, b), atol=1e-4)

    def test_invalid_memory(self):
        with pytest.raises(ValueError):
            LbfgsState(memory=0)


class TestArmijoLineSearch:
    def test_accepts_full_step_on_easy_problem(self):
        def f(w):
            return float(w @ w)
        w = np.array([1.0, 0.0])
        grad = 2 * w
        result = armijo_line_search(f, w, -grad, f(w), grad)
        assert result.success
        assert result.fval < f(w)

    def test_backtracks_when_needed(self):
        # Steep narrow valley: full step overshoots.
        def f(w):
            return float(1000 * w[0] ** 2)
        w = np.array([1.0])
        grad = np.array([2000.0])
        result = armijo_line_search(f, w, -grad, f(w), grad)
        assert result.success
        assert result.step < 1.0
        assert result.evaluations > 1

    def test_non_descent_direction_fails_fast(self):
        def f(w):
            return float(w @ w)
        w = np.array([1.0])
        grad = np.array([2.0])
        result = armijo_line_search(f, w, grad, f(w), grad)  # uphill
        assert not result.success
        assert result.evaluations == 0


class TestMinimize:
    def test_well_conditioned_quadratic(self):
        A = np.eye(5)
        b = np.arange(1.0, 6.0)
        result = minimize(quadratic(A, b), np.zeros(5))
        assert result.converged
        assert np.allclose(result.w, b, atol=1e-5)

    def test_ill_conditioned_quadratic(self):
        A = np.diag(np.logspace(0, 4, 6))
        b = np.ones(6)
        result = minimize(quadratic(A, b), np.zeros(6), max_iters=200)
        assert result.converged
        assert np.allclose(result.w, np.linalg.solve(A, b), atol=1e-3)

    def test_rosenbrock(self):
        result = minimize(rosenbrock, np.array([-1.2, 1.0]), max_iters=200,
                          gtol=1e-5)
        assert result.converged
        assert np.allclose(result.w, [1.0, 1.0], atol=1e-3)

    def test_converges_much_faster_than_gd_on_ill_conditioned(self):
        """The motivation for spark.ml: second-order info helps."""
        A = np.diag([1.0, 1000.0])
        b = np.ones(2)
        fg = quadratic(A, b)
        result = minimize(fg, np.zeros(2), max_iters=100, gtol=1e-8)
        assert result.converged
        assert result.iterations < 30  # GD would need thousands

    def test_counts_evaluations(self):
        result = minimize(rosenbrock, np.array([0.0, 0.0]), max_iters=50)
        assert result.function_evals >= result.gradient_evals
        assert result.gradient_evals >= 1
