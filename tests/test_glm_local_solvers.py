"""Unit tests for repro.glm.local_solvers."""

import numpy as np
import pytest

from repro.data import SyntheticSpec, generate
from repro.glm import (LocalStats, Objective, apply_update, gd_step,
                       mgd_epoch, sample_batch, sgd_epoch)


@pytest.fixture
def data():
    ds = generate(SyntheticSpec(n_rows=400, n_features=40, nnz_per_row=6.0,
                                seed=17))
    return ds.X, ds.y


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSampleBatch:
    def test_size(self, data, rng):
        X, y = data
        Xb, yb = sample_batch(X, y, 32, rng)
        assert Xb.shape == (32, 40)
        assert yb.shape == (32,)

    def test_caps_at_partition_size(self, data, rng):
        X, y = data
        Xb, _ = sample_batch(X, y, 10_000, rng)
        assert Xb.shape[0] == X.shape[0]

    def test_no_replacement(self, data, rng):
        X, y = data
        # Rows are distinct with high probability under our generator;
        # sampling without replacement must give distinct row data for a
        # full-size batch.
        Xb, _ = sample_batch(X, y, X.shape[0], rng)
        assert Xb.shape[0] == X.shape[0]

    def test_rejects_zero(self, data, rng):
        X, y = data
        with pytest.raises(ValueError):
            sample_batch(X, y, 0, rng)

    def test_empty_partition_is_a_clear_error(self, data, rng):
        # An empty partition used to die inside rng.choice with an
        # inscrutable message; it must name the actual problem.
        X, y = data
        with pytest.raises(ValueError, match="partition is empty"):
            sample_batch(X[:0], y[:0], 4, rng)


class TestApplyUpdate:
    def test_plain_gd(self):
        obj = Objective("hinge")
        w = np.array([1.0, 2.0])
        grad = np.array([0.5, -0.5])
        new = apply_update(w, grad, 0.1, obj)
        assert np.allclose(new, [0.95, 2.05])

    def test_l2_adds_decay(self):
        obj = Objective("hinge", "l2", 0.1)
        w = np.array([1.0, 0.0])
        new = apply_update(w, np.zeros(2), 0.5, obj)
        assert np.allclose(new, [1.0 - 0.5 * 0.1, 0.0])

    def test_does_not_mutate_input(self):
        obj = Objective("hinge")
        w = np.array([1.0])
        apply_update(w, np.array([1.0]), 0.1, obj)
        assert w[0] == 1.0


class TestGdStep:
    def test_decreases_objective(self, data):
        X, y = data
        obj = Objective("hinge")
        w = np.zeros(40)
        before = obj.value(w, X, y)
        w2, stats = gd_step(obj, w, X, y, 0.1)
        assert obj.value(w2, X, y) < before
        assert stats.n_updates == 1
        assert stats.nnz_processed == 2 * X.nnz

    def test_dense_ops_only_when_regularized(self, data):
        X, y = data
        w = np.zeros(40)
        _, plain = gd_step(Objective("hinge"), w, X, y, 0.1)
        _, reg = gd_step(Objective("hinge", "l2", 0.1), w, X, y, 0.1)
        assert plain.dense_ops == 0
        assert reg.dense_ops == 40


class TestMgdEpoch:
    def test_update_count(self, data, rng):
        X, y = data
        obj = Objective("hinge")
        _, stats = mgd_epoch(obj, np.zeros(40), X, y, 0.05, 64, rng)
        # ceil(400 / 64) = 7 batches
        assert stats.n_updates == 7

    def test_decreases_objective(self, data, rng):
        X, y = data
        obj = Objective("hinge")
        w = np.zeros(40)
        w2, _ = mgd_epoch(obj, w, X, y, 0.05, 64, rng)
        assert obj.value(w2, X, y) < obj.value(w, X, y)

    def test_covers_all_nnz(self, data, rng):
        X, y = data
        _, stats = mgd_epoch(Objective("hinge"), np.zeros(40), X, y,
                             0.05, 64, rng)
        assert stats.nnz_processed == 2 * X.nnz

    def test_no_shuffle_is_deterministic(self, data):
        X, y = data
        obj = Objective("hinge")
        a, _ = mgd_epoch(obj, np.zeros(40), X, y, 0.05, 64,
                         np.random.default_rng(1), shuffle=False)
        b, _ = mgd_epoch(obj, np.zeros(40), X, y, 0.05, 64,
                         np.random.default_rng(2), shuffle=False)
        assert np.array_equal(a, b)

    def test_rejects_bad_batch(self, data, rng):
        X, y = data
        with pytest.raises(ValueError):
            mgd_epoch(Objective("hinge"), np.zeros(40), X, y, 0.05, 0, rng)


class TestSgdEpoch:
    def test_chunked_update_count(self, data, rng):
        X, y = data
        _, stats = sgd_epoch(Objective("hinge"), np.zeros(40), X, y, 0.05,
                             rng, chunk_size=50)
        assert stats.n_updates == 8  # 400 / 50

    def test_decreases_objective(self, data, rng):
        X, y = data
        obj = Objective("hinge", "l2", 0.05)
        w = np.zeros(40)
        w2, _ = sgd_epoch(obj, w, X, y, 0.05, rng, chunk_size=16)
        assert obj.value(w2, X, y) < obj.value(w, X, y)

    def test_lazy_and_eager_l2_agree(self, data):
        """Same shuffle order => identical iterates, lazy or eager."""
        X, y = data
        obj = Objective("hinge", "l2", 0.1)
        w = np.random.default_rng(5).normal(size=40) * 0.1
        lazy, _ = sgd_epoch(obj, w, X, y, 0.05, np.random.default_rng(9),
                            chunk_size=16, lazy=True)
        eager, _ = sgd_epoch(obj, w, X, y, 0.05, np.random.default_rng(9),
                             chunk_size=16, lazy=False)
        assert np.allclose(lazy, eager, atol=1e-10)

    def test_lazy_charges_fewer_dense_ops(self, data):
        X, y = data
        obj = Objective("hinge", "l2", 0.1)
        w = np.zeros(40)
        _, lazy = sgd_epoch(obj, w, X, y, 0.05, np.random.default_rng(9),
                            chunk_size=4, lazy=True)
        _, eager = sgd_epoch(obj, w, X, y, 0.05, np.random.default_rng(9),
                             chunk_size=4, lazy=False)
        assert lazy.dense_ops < eager.dense_ops

    def test_l1_falls_back_to_eager(self, data, rng):
        X, y = data
        obj = Objective("hinge", "l1", 0.05)
        w2, stats = sgd_epoch(obj, np.zeros(40), X, y, 0.05, rng,
                              chunk_size=16, lazy=True)
        # Eager path charges dim dense ops per update.
        assert stats.dense_ops >= stats.n_updates * 40
        assert np.all(np.isfinite(w2))

    def test_per_example_chunk(self, data, rng):
        X, y = data
        obj = Objective("hinge")
        _, stats = sgd_epoch(obj, np.zeros(40), X[:20], y[:20], 0.05, rng,
                             chunk_size=1)
        assert stats.n_updates == 20

    def test_excessive_lr_lambda_raises(self, data, rng):
        X, y = data
        obj = Objective("hinge", "l2", 10.0)
        with pytest.raises(ValueError, match="lazy decay"):
            sgd_epoch(obj, np.zeros(40), X, y, 0.2, rng, lazy=True)

    def test_rejects_bad_chunk(self, data, rng):
        X, y = data
        with pytest.raises(ValueError):
            sgd_epoch(Objective("hinge"), np.zeros(40), X, y, 0.05, rng,
                      chunk_size=0)


class TestLocalStats:
    def test_merge(self):
        a = LocalStats(nnz_processed=10, n_updates=1, dense_ops=5)
        b = LocalStats(nnz_processed=20, n_updates=2, dense_ops=0)
        c = a.merge(b)
        assert (c.nnz_processed, c.n_updates, c.dense_ops) == (30, 3, 5)
