"""Unit tests for repro.glm.losses, including finite-difference checks."""

import numpy as np
import pytest

from repro.glm.losses import (LOSSES, HingeLoss, LogisticLoss, SquaredLoss,
                              get_loss)


def finite_difference_factor(loss, margin, y, eps=1e-6):
    """Numerical d(loss)/d(margin) for a single example."""
    up = loss.value(np.array([margin + eps]), np.array([y]))
    down = loss.value(np.array([margin - eps]), np.array([y]))
    return (up - down) / (2 * eps)


class TestHinge:
    def test_value_inactive(self):
        loss = HingeLoss()
        assert loss.value(np.array([2.0]), np.array([1.0])) == 0.0

    def test_value_active(self):
        loss = HingeLoss()
        assert loss.value(np.array([0.0]), np.array([1.0])) == (
            pytest.approx(1.0))

    def test_value_is_mean(self):
        loss = HingeLoss()
        v = loss.value(np.array([0.0, 2.0]), np.array([1.0, 1.0]))
        assert v == pytest.approx(0.5)

    def test_gradient_factor(self):
        loss = HingeLoss()
        factor = loss.gradient_factor(np.array([0.0, 2.0, -1.0]),
                                      np.array([1.0, 1.0, -1.0]))
        assert list(factor) == [-1.0, 0.0, 0.0]

    @pytest.mark.parametrize("margin,y", [(-2.0, 1.0), (0.5, 1.0),
                                          (0.5, -1.0), (3.0, -1.0)])
    def test_matches_finite_difference(self, margin, y):
        loss = HingeLoss()
        analytic = loss.gradient_factor(np.array([margin]),
                                        np.array([y]))[0]
        numeric = finite_difference_factor(loss, margin, y)
        assert analytic == pytest.approx(numeric, abs=1e-5)


class TestLogistic:
    @pytest.mark.parametrize("margin,y", [(-3.0, 1.0), (0.0, 1.0),
                                          (2.5, -1.0), (-0.7, -1.0)])
    def test_matches_finite_difference(self, margin, y):
        loss = LogisticLoss()
        analytic = loss.gradient_factor(np.array([margin]),
                                        np.array([y]))[0]
        numeric = finite_difference_factor(loss, margin, y)
        assert analytic == pytest.approx(numeric, abs=1e-5)

    def test_value_at_zero_margin(self):
        loss = LogisticLoss()
        assert loss.value(np.array([0.0]), np.array([1.0])) == (
            pytest.approx(np.log(2.0)))

    def test_numerically_stable_at_extreme_margins(self):
        loss = LogisticLoss()
        v = loss.value(np.array([-1000.0, 1000.0]), np.array([1.0, 1.0]))
        assert np.isfinite(v)
        g = loss.gradient_factor(np.array([-1000.0, 1000.0]),
                                 np.array([1.0, 1.0]))
        assert np.all(np.isfinite(g))
        assert g[0] == pytest.approx(-1.0)
        assert g[1] == pytest.approx(0.0, abs=1e-12)


class TestSquared:
    @pytest.mark.parametrize("margin,y", [(0.3, 1.0), (-2.0, -1.0),
                                          (1.5, -1.0)])
    def test_matches_finite_difference(self, margin, y):
        loss = SquaredLoss()
        analytic = loss.gradient_factor(np.array([margin]),
                                        np.array([y]))[0]
        numeric = finite_difference_factor(loss, margin, y)
        assert analytic == pytest.approx(numeric, abs=1e-5)

    def test_zero_at_exact_fit(self):
        loss = SquaredLoss()
        assert loss.value(np.array([1.0]), np.array([1.0])) == 0.0


class TestRegistry:
    def test_get_loss_by_name(self):
        assert isinstance(get_loss("hinge"), HingeLoss)
        assert isinstance(get_loss("logistic"), LogisticLoss)
        assert isinstance(get_loss("squared"), SquaredLoss)

    def test_registry_names_match(self):
        for name, cls in LOSSES.items():
            assert cls.name == name

    def test_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown loss"):
            get_loss("perceptron")
