"""Unit tests for repro.glm.regularizers and repro.glm.objective."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data import SyntheticSpec, generate
from repro.glm import (L1Regularizer, L2Regularizer, NoRegularizer,
                       Objective, get_regularizer)


class TestRegularizers:
    def test_none_is_zero(self):
        reg = NoRegularizer()
        w = np.array([1.0, -2.0])
        assert reg.value(w) == 0.0
        assert np.array_equal(reg.gradient(w), np.zeros(2))
        assert not reg.is_dense

    def test_l2_value_and_gradient(self):
        reg = L2Regularizer(0.5)
        w = np.array([2.0, -2.0])
        assert reg.value(w) == pytest.approx(0.25 * 8.0)
        assert np.allclose(reg.gradient(w), 0.5 * w)
        assert reg.is_dense

    def test_l2_finite_difference(self):
        reg = L2Regularizer(0.3)
        w = np.array([1.0, -0.5, 2.0])
        eps = 1e-6
        for i in range(3):
            up, down = w.copy(), w.copy()
            up[i] += eps
            down[i] -= eps
            numeric = (reg.value(up) - reg.value(down)) / (2 * eps)
            assert reg.gradient(w)[i] == pytest.approx(numeric, abs=1e-5)

    def test_l1_value_and_subgradient(self):
        reg = L1Regularizer(0.2)
        w = np.array([3.0, -1.0, 0.0])
        assert reg.value(w) == pytest.approx(0.8)
        assert np.allclose(reg.gradient(w), [0.2, -0.2, 0.0])

    def test_strength_zero_maps_to_none(self):
        assert isinstance(get_regularizer("l2", 0.0), NoRegularizer)
        assert isinstance(get_regularizer("l1", 0.0), NoRegularizer)

    def test_negative_strength_rejected(self):
        with pytest.raises(ValueError):
            L2Regularizer(-0.1)
        with pytest.raises(ValueError):
            L1Regularizer(0.0)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            get_regularizer("elastic", 0.1)


class TestObjective:
    @pytest.fixture
    def data(self):
        ds = generate(SyntheticSpec(n_rows=150, n_features=25, seed=8))
        return ds.X, ds.y

    def test_value_adds_regularization(self, data):
        X, y = data
        w = np.random.default_rng(0).normal(size=25)
        plain = Objective("hinge")
        reg = Objective("hinge", "l2", 0.1)
        expected_gap = 0.05 * float(w @ w)
        assert reg.value(w, X, y) - plain.value(w, X, y) == (
            pytest.approx(expected_gap))

    def test_batch_gradient_finite_difference(self, data):
        X, y = data
        obj = Objective("logistic", "l2", 0.05)
        rng = np.random.default_rng(1)
        w = rng.normal(size=25) * 0.1
        grad = obj.batch_gradient(w, X, y)
        eps = 1e-6
        for i in rng.choice(25, size=6, replace=False):
            up, down = w.copy(), w.copy()
            up[i] += eps
            down[i] -= eps
            numeric = (obj.value(up, X, y) - obj.value(down, X, y)) / (2 * eps)
            assert grad[i] == pytest.approx(numeric, abs=1e-4)

    def test_loss_gradient_excludes_regularizer(self, data):
        X, y = data
        obj = Objective("hinge", "l2", 0.1)
        w = np.ones(25)
        diff = obj.batch_gradient(w, X, y) - obj.batch_loss_gradient(w, X, y)
        assert np.allclose(diff, 0.1 * w)

    def test_empty_batch_gradient_is_zero(self):
        obj = Objective("hinge")
        X = sp.csr_matrix((0, 10))
        y = np.zeros(0)
        grad = obj.batch_loss_gradient(np.ones(10), X, y)
        assert np.array_equal(grad, np.zeros(10))

    def test_gradient_is_mean_over_batch(self, data):
        """Doubling the batch by duplication must not change the gradient."""
        X, y = data
        obj = Objective("hinge")
        w = np.random.default_rng(2).normal(size=25) * 0.1
        X2 = sp.vstack([X, X]).tocsr()
        y2 = np.concatenate([y, y])
        assert np.allclose(obj.batch_loss_gradient(w, X, y),
                           obj.batch_loss_gradient(w, X2, y2))

    def test_describe(self):
        assert Objective("hinge", "l2", 0.1).describe() == "hinge+l2(0.1)"
        assert Objective("hinge").is_regularized is False
        assert Objective("hinge", "l2", 0.1).is_regularized is True

    def test_accepts_instances(self):
        from repro.glm import HingeLoss
        obj = Objective(HingeLoss(), L2Regularizer(0.2))
        assert obj.regularizer.strength == 0.2
