"""Unit tests for repro.glm.schedules and repro.glm.model."""

import numpy as np
import pytest

from repro.data import SyntheticSpec, generate
from repro.glm import (ConstantLR, GLMModel, InvSqrtLR, InvTimeLR, Objective,
                       get_schedule)


class TestSchedules:
    def test_constant(self):
        lr = ConstantLR(0.5)
        assert lr.at(1) == lr.at(1000) == 0.5

    def test_inv_sqrt(self):
        lr = InvSqrtLR(1.0)
        assert lr.at(1) == pytest.approx(1.0)
        assert lr.at(4) == pytest.approx(0.5)
        assert lr.at(100) == pytest.approx(0.1)

    def test_inv_time(self):
        lr = InvTimeLR(1.0, decay=0.1)
        assert lr.at(10) == pytest.approx(0.5)

    def test_one_based_indexing(self):
        with pytest.raises(ValueError):
            InvSqrtLR(1.0).at(0)
        with pytest.raises(ValueError):
            InvTimeLR(1.0).at(0)

    def test_get_schedule(self):
        assert isinstance(get_schedule("constant", 0.1), ConstantLR)
        assert isinstance(get_schedule("inv_sqrt", 0.1), InvSqrtLR)
        assert isinstance(get_schedule("inv_time", 0.1), InvTimeLR)
        with pytest.raises(KeyError):
            get_schedule("cosine", 0.1)

    def test_positive_rate_required(self):
        for cls in (ConstantLR, InvSqrtLR, InvTimeLR):
            with pytest.raises(ValueError):
                cls(0.0)


class TestGLMModel:
    @pytest.fixture
    def ds(self):
        return generate(SyntheticSpec(n_rows=200, n_features=30, noise=0.0,
                                      seed=21))

    def test_predict_shape_and_values(self, ds):
        model = GLMModel(weights=np.ones(30), objective=Objective("hinge"))
        preds = model.predict(ds.X)
        assert preds.shape == (200,)
        assert set(np.unique(preds)) <= {-1.0, 1.0}

    def test_accuracy_bounds(self, ds):
        model = GLMModel(weights=np.zeros(30), objective=Objective("hinge"))
        acc = model.accuracy(ds.X, ds.y)
        assert 0.0 <= acc <= 1.0

    def test_decision_function_matches_matvec(self, ds):
        w = np.random.default_rng(0).normal(size=30)
        model = GLMModel(weights=w, objective=Objective("hinge"))
        assert np.allclose(model.decision_function(ds.X), ds.X @ w)

    def test_dimension_mismatch_raises(self, ds):
        model = GLMModel(weights=np.zeros(29), objective=Objective("hinge"))
        with pytest.raises(ValueError, match="features"):
            model.predict(ds.X)

    def test_rejects_matrix_weights(self):
        with pytest.raises(ValueError):
            GLMModel(weights=np.zeros((3, 3)), objective=Objective("hinge"))

    def test_objective_value_delegates(self, ds):
        obj = Objective("hinge", "l2", 0.1)
        w = np.ones(30) * 0.1
        model = GLMModel(weights=w, objective=obj)
        assert model.objective_value(ds.X, ds.y) == pytest.approx(
            obj.value(w, ds.X, ds.y))
