"""Golden convergence regression: pinned numerics and simulated clocks.

``tests/data/golden_convergence.json`` stores the final objective,
simulated makespan and step count of one tiny fixed-seed run per system,
captured from the pre-fault-injection tree.  These tests re-run the same
workloads and compare: with fault injection **disabled** (the default),
every trainer must reproduce the pinned values — the failure-aware code
paths cannot perturb failure-free behaviour.

If a PR changes these numbers *intentionally* (new cost model, different
update order), regenerate the file with::

    PYTHONPATH=src python tests/data/make_golden.py

and say so in the PR description.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from data.make_golden import SYSTEMS, run_system

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_convergence.json"

#: Tolerances are relative and tight: identical code must match to within
#: BLAS reduction-order noise across platforms; any algorithmic change
#: lands far outside them.
REL_TOL = 1e-9


@pytest.fixture(scope="module")
def golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_system_matches_golden(system, golden):
    assert system in golden, (
        f"{system} missing from golden_convergence.json — regenerate with "
        "PYTHONPATH=src python tests/data/make_golden.py")
    fresh = run_system(system)
    pinned = golden[system]
    assert fresh["total_steps"] == pinned["total_steps"]
    assert fresh["final_objective"] == pytest.approx(
        pinned["final_objective"], rel=REL_TOL), (
        f"{system}: final objective drifted from the golden value — "
        "failure-free numerics must be bit-stable")
    assert fresh["total_seconds"] == pytest.approx(
        pinned["total_seconds"], rel=REL_TOL), (
        f"{system}: simulated makespan drifted from the golden value — "
        "the default (faults-off) timing path must be unchanged")


def test_golden_file_covers_every_system(golden):
    assert sorted(golden) == sorted(SYSTEMS)
