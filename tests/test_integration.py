"""Integration tests: the paper's qualitative claims at test scale.

Each test here reproduces, in miniature, one of the shapes the evaluation
section reports.  These are the tests that tie the substrates together.
"""

import pytest

from repro.core import (MLlibModelAveragingTrainer, MLlibStarTrainer,
                        MLlibTrainer, TrainerConfig)
from repro.data import SyntheticSpec, generate
from repro.glm import Objective
from repro.metrics import evaluate_convergence, speedup, summarize
from repro.ps import AngelTrainer, PetuumStarTrainer


@pytest.fixture(scope="module")
def determined():
    """n >> d, avazu/kdd12 style."""
    return generate(SyntheticSpec(n_rows=3000, n_features=150,
                                  nnz_per_row=10.0, noise=0.03, seed=31),
                    name="determined")


@pytest.fixture(scope="module")
def underdetermined():
    """d > n, url/kddb style."""
    return generate(SyntheticSpec(n_rows=400, n_features=900,
                                  nnz_per_row=25.0, noise=0.01, seed=32),
                    name="underdetermined")


@pytest.fixture(scope="module")
def cluster():
    from repro.cluster import cluster1
    return cluster1(executors=4)


class TestFigure4Shapes:
    """MLlib vs MLlib*."""

    # Configurations mirror the paper's per-system tuning: MLlib runs its
    # default stepSize/sqrt(t) decay on small batches; MLlib* runs local
    # SGD with the same decay on the outer step.
    STAR = TrainerConfig(max_steps=30, learning_rate=0.5,
                         lr_schedule="inv_sqrt", local_chunk_size=8, seed=1)
    MLLIB = TrainerConfig(max_steps=600, eval_every=10, learning_rate=0.5,
                          lr_schedule="inv_sqrt", batch_fraction=0.05,
                          seed=1)

    def test_star_needs_far_fewer_steps(self, determined, cluster):
        obj = Objective("hinge")
        star = MLlibStarTrainer(obj, cluster, self.STAR).fit(determined)
        mllib = MLlibTrainer(obj, cluster, self.MLLIB).fit(determined)
        res = evaluate_convergence([mllib.history, star.history])
        assert res["MLlib*"].converged
        ratio = speedup(res["MLlib"], res["MLlib*"], "steps")
        # Either MLlib never converges or it needs >= 5x the steps.
        assert ratio is None or ratio >= 5.0

    def test_mllib_struggles_on_underdetermined_no_reg(self, underdetermined,
                                                       cluster):
        """Figure 4(d)/(f): without regularization on d > n data, MLlib
        cannot reach MLlib*'s loss within the step budget."""
        obj = Objective("hinge")
        star = MLlibStarTrainer(obj, cluster, self.STAR).fit(underdetermined)
        mllib = MLlibTrainer(obj, cluster, self.MLLIB).fit(underdetermined)
        res = evaluate_convergence([mllib.history, star.history])
        assert res["MLlib*"].converged
        assert not res["MLlib"].converged

    def test_l2_shrinks_the_gap(self, underdetermined, cluster):
        """Figure 4(c)/(e): with L2 = 0.1 the problem is better conditioned
        and MLlib now reaches (essentially) the same loss as MLlib*."""
        obj = Objective("hinge", "l2", 0.1)
        star = MLlibStarTrainer(obj, cluster, self.STAR).fit(underdetermined)
        mllib = MLlibTrainer(
            obj, cluster,
            self.MLLIB.with_overrides(max_steps=1500, eval_every=25,
                                      learning_rate=1.0,
                                      batch_fraction=0.1),
        ).fit(underdetermined)
        gap = abs(star.history.best_objective - mllib.history.best_objective)
        assert gap < 0.03
        res = evaluate_convergence([mllib.history, star.history],
                                   accuracy_loss=0.02)
        assert res["MLlib"].converged
        assert res["MLlib*"].converged


class TestFigure3Shapes:
    """Gantt-chart structure."""

    def test_mllib_executors_wait_much_more_than_star(self, determined,
                                                      cluster):
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=5, seed=1)
        mllib = MLlibTrainer(obj, cluster, cfg).fit(determined)
        star = MLlibStarTrainer(obj, cluster, cfg).fit(determined)
        s_mllib = summarize(mllib.trace)
        s_star = summarize(star.trace)
        assert s_star.executor_busy_fraction > s_mllib.executor_busy_fraction
        assert s_star.driver_busy_fraction == 0.0
        assert s_mllib.driver_busy_fraction > 0.0


class TestTrafficInvariant:
    def test_ma_and_star_same_numerics_different_time(self, determined,
                                                      cluster):
        """Same updates, same convergence; only the clock differs."""
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=5, seed=2)
        ma = MLlibModelAveragingTrainer(obj, cluster, cfg).fit(determined)
        star = MLlibStarTrainer(obj, cluster, cfg).fit(determined)
        assert ma.history.objectives() == pytest.approx(
            star.history.objectives())
        assert ma.history.seconds() != star.history.seconds()


class TestFigure5Shapes:
    def test_sendmodel_systems_beat_mllib(self, determined, cluster):
        """All SendModel systems reach a lower objective than MLlib in the
        same (small) number of communication steps."""
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=10, learning_rate=0.1,
                            batch_fraction=0.3, seed=3)
        mllib = MLlibTrainer(obj, cluster, cfg).fit(determined)
        for cls in (MLlibStarTrainer, AngelTrainer):
            other = cls(obj, cluster, cfg).fit(determined)
            assert other.final_objective < mllib.final_objective, cls

    def test_petuum_star_converges(self, determined, cluster):
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=40, learning_rate=0.1,
                            batch_fraction=0.3, seed=3)
        result = PetuumStarTrainer(obj, cluster, cfg).fit(determined)
        assert result.final_objective < 0.7 * result.history.objectives()[0]


class TestFigure6Shapes:
    def test_scaling_is_sublinear(self, cluster):
        """32 -> 128 machines is far below 4x (heterogeneity + comm)."""
        from repro.cluster import cluster2
        data = generate(SyntheticSpec(n_rows=12_000, n_features=2_000,
                                      nnz_per_row=10.0, seed=33), "wx-mini")
        obj = Objective("hinge")
        times = {}
        for k in (8, 32):
            cl = cluster2(machines=k, seed=5)
            cfg = TrainerConfig(max_steps=4, learning_rate=0.2, seed=1)
            result = MLlibStarTrainer(obj, cl, cfg).fit(data)
            times[k] = result.history.total_seconds
        observed_speedup = times[8] / times[32]
        ideal = 32 / 8
        assert observed_speedup < ideal


class TestEndToEndQuality:
    def test_trained_model_beats_chance(self, determined, cluster):
        obj = Objective("hinge", "l2", 0.01)
        result = MLlibStarTrainer(obj, cluster, TrainerConfig(
            max_steps=15, learning_rate=0.2, seed=4)).fit(determined)
        acc = result.model.accuracy(determined.X, determined.y)
        assert acc > 0.8

    def test_logistic_regression_works_too(self, determined, cluster):
        obj = Objective("logistic", "l2", 0.01)
        result = MLlibStarTrainer(obj, cluster, TrainerConfig(
            max_steps=15, learning_rate=0.5, seed=4)).fit(determined)
        acc = result.model.accuracy(determined.X, determined.y)
        assert acc > 0.8
