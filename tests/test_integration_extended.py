"""Extended integration tests: engine variants, extensions, exports."""

import numpy as np

from repro.cluster import ComputeCostModel, cluster1, cluster2
from repro.core import (MLlibStarTrainer, MLlibTrainer, SparkMlStarTrainer,
                        SparkMlTrainer, TrainerConfig)
from repro.engine import BroadcastModel, TreeAggregateModel
from repro.glm import Objective
from repro.metrics import write_histories_json, write_history_csv
from repro.tuning import GridSearch


class TestEngineVariantsInTrainers:
    def test_flat_aggregation_slower_driver(self, small_dataset,
                                            small_cluster):
        """A depth-1 tree loads the driver more than MLlib's depth-2."""
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=3, seed=1)
        from repro.data import SyntheticSpec, generate
        big = generate(SyntheticSpec(n_rows=400, n_features=20_000,
                                     nnz_per_row=8.0, seed=4), "big")
        flat = MLlibTrainer(obj, small_cluster, cfg,
                            tree=TreeAggregateModel(depth=1)).fit(big)
        tree = MLlibTrainer(obj, small_cluster, cfg,
                            tree=TreeAggregateModel(depth=2)).fit(big)
        assert flat.trace.busy_seconds("driver") > (
            tree.trace.busy_seconds("driver"))

    def test_torrent_broadcast_speeds_up_mllib(self, small_cluster):
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=3, seed=1)
        from repro.data import SyntheticSpec, generate
        big = generate(SyntheticSpec(n_rows=400, n_features=20_000,
                                     nnz_per_row=8.0, seed=4), "big")
        cluster16 = cluster1(executors=16)
        serial = MLlibTrainer(obj, cluster16, cfg,
                              broadcast=BroadcastModel("serial")).fit(big)
        torrent = MLlibTrainer(obj, cluster1(executors=16), cfg,
                               broadcast=BroadcastModel("torrent")).fit(big)
        assert torrent.history.total_seconds < serial.history.total_seconds
        # Identical numerics: transport does not change math.
        assert np.allclose(serial.model.weights, torrent.model.weights)

    def test_custom_compute_model_scales_time(self, tiny_dataset):
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=3, seed=1)
        slow_compute = ComputeCostModel(sec_per_nnz=1e-5)
        fast = MLlibStarTrainer(obj, cluster1(executors=4), cfg).fit(
            tiny_dataset)
        slow = MLlibStarTrainer(
            obj, cluster1(executors=4, compute=slow_compute), cfg).fit(
            tiny_dataset)
        assert slow.history.total_seconds > fast.history.total_seconds
        assert np.allclose(fast.model.weights, slow.model.weights)


class TestSparkMlOnCatalogData:
    def test_lbfgs_converges_on_url_analog(self):
        from repro.data import url_like
        dataset = url_like()
        obj = Objective("logistic", "l2", 0.01)
        result = SparkMlStarTrainer(obj, cluster1(executors=8),
                                    TrainerConfig(max_steps=15,
                                                  seed=1)).fit(dataset)
        # L-BFGS on a smooth strongly convex objective: big reduction.
        assert result.final_objective < 0.55 * result.history.objectives()[0]
        assert result.model.accuracy(dataset.X, dataset.y) > 0.85

    def test_lbfgs_beats_mgd_per_communication_step(self):
        from repro.data import url_like
        dataset = url_like()
        obj = Objective("logistic", "l2", 0.01)
        cfg = TrainerConfig(max_steps=10, learning_rate=0.5,
                            lr_schedule="inv_sqrt", seed=1)
        lbfgs = SparkMlTrainer(obj, cluster1(), cfg).fit(dataset)
        mgd = MLlibTrainer(obj, cluster1(), cfg).fit(dataset)
        assert lbfgs.final_objective < mgd.final_objective


class TestExportsOnRealRuns:
    def test_csv_json_round_trip(self, tiny_dataset, small_cluster,
                                 tmp_path):
        obj = Objective("hinge")
        result = MLlibStarTrainer(obj, small_cluster,
                                  TrainerConfig(max_steps=4, seed=1)).fit(
            tiny_dataset)
        write_history_csv([result.history], tmp_path / "run.csv")
        write_histories_json([result.history], tmp_path / "run.json")
        import json
        payload = json.loads((tmp_path / "run.json").read_text())
        assert payload[0]["objectives"] == result.history.objectives()


class TestGridSearchAcrossSystems:
    def test_grid_search_works_for_lbfgs_trainer(self, tiny_dataset,
                                                 small_cluster):
        search = GridSearch(
            trainer_cls=SparkMlStarTrainer,
            objective=Objective("logistic", "l2", 0.01),
            cluster=small_cluster,
            base_config=TrainerConfig(max_steps=5, seed=1),
        )
        best = search.best(tiny_dataset, {"seed": [1, 2]})
        assert best.best_objective < 0.7  # below log(2) start


class TestHeterogeneousClusterDeterminism:
    def test_same_seed_same_timeline(self, tiny_dataset):
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=4, seed=2)

        def run():
            return MLlibStarTrainer(obj, cluster2(machines=4, seed=9),
                                    cfg).fit(tiny_dataset)
        a, b = run(), run()
        assert a.history.seconds() == b.history.seconds()
        assert np.array_equal(a.model.weights, b.model.weights)

    def test_different_seed_different_timeline(self, tiny_dataset):
        obj = Objective("hinge")
        cfg = TrainerConfig(max_steps=4, seed=2)
        a = MLlibStarTrainer(obj, cluster2(machines=4, seed=1), cfg).fit(
            tiny_dataset)
        b = MLlibStarTrainer(obj, cluster2(machines=4, seed=2), cfg).fit(
            tiny_dataset)
        assert a.history.seconds() != b.history.seconds()
