"""Unit tests for repro.metrics (history, convergence, gantt, reporting)."""

import pytest

from repro.cluster import Trace
from repro.metrics import (ACCURACY_LOSS, ConvergenceResult, TrainingHistory,
                           convergence_threshold, evaluate_convergence,
                           format_speedup, format_table, render_ascii,
                           speedup, summarize)


def make_history(system, points):
    h = TrainingHistory(system=system)
    for step, sec, obj in points:
        h.record(step, sec, obj)
    return h


class TestTrainingHistory:
    def test_record_and_accessors(self):
        h = make_history("X", [(0, 0.0, 1.0), (1, 2.0, 0.5)])
        assert h.total_steps == 1
        assert h.total_seconds == 2.0
        assert h.final_objective == 0.5
        assert h.best_objective == 0.5
        assert h.objectives() == [1.0, 0.5]

    def test_best_not_final(self):
        h = make_history("X", [(0, 0.0, 1.0), (1, 1.0, 0.3), (2, 2.0, 0.4)])
        assert h.best_objective == 0.3
        assert h.final_objective == 0.4

    def test_monotone_steps_enforced(self):
        h = make_history("X", [(2, 1.0, 1.0)])
        with pytest.raises(ValueError):
            h.record(1, 2.0, 0.5)

    def test_monotone_time_enforced(self):
        h = make_history("X", [(0, 5.0, 1.0)])
        with pytest.raises(ValueError):
            h.record(1, 4.0, 0.5)

    def test_first_reaching(self):
        h = make_history("X", [(0, 0.0, 1.0), (1, 1.0, 0.6), (2, 2.0, 0.4)])
        assert h.first_reaching(0.5).step == 2
        assert h.first_reaching(0.1) is None

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory("X").final_objective


class TestConvergence:
    def test_threshold_uses_global_optimum(self):
        fast = make_history("fast", [(0, 0.0, 1.0), (5, 1.0, 0.30)])
        slow = make_history("slow", [(0, 0.0, 1.0), (5, 9.0, 0.50)])
        assert convergence_threshold([fast, slow]) == pytest.approx(
            0.30 + ACCURACY_LOSS)

    def test_evaluate_convergence(self):
        fast = make_history("fast", [(0, 0.0, 1.0), (2, 1.0, 0.30)])
        slow = make_history("slow", [(0, 0.0, 1.0), (9, 20.0, 0.305),
                                     (10, 22.0, 0.301)])
        never = make_history("never", [(0, 0.0, 1.0), (10, 5.0, 0.9)])
        res = evaluate_convergence([fast, slow, never])
        assert res["fast"].converged and res["fast"].steps == 2
        assert res["slow"].converged and res["slow"].steps == 9
        assert not res["never"].converged
        assert res["never"].seconds is None

    def test_speedup_axes(self):
        base = ConvergenceResult("b", True, steps=100, seconds=50.0,
                                 final_objective=0.3)
        imp = ConvergenceResult("i", True, steps=5, seconds=2.0,
                                final_objective=0.3)
        assert speedup(base, imp, "steps") == pytest.approx(20.0)
        assert speedup(base, imp, "seconds") == pytest.approx(25.0)

    def test_speedup_none_when_not_converged(self):
        base = ConvergenceResult("b", False, None, None, 0.9)
        imp = ConvergenceResult("i", True, 5, 2.0, 0.3)
        assert speedup(base, imp) is None

    def test_speedup_bad_axis(self):
        imp = ConvergenceResult("i", True, 5, 2.0, 0.3)
        with pytest.raises(ValueError):
            speedup(imp, imp, axis="epochs")


class TestGantt:
    @pytest.fixture
    def trace(self):
        t = Trace()
        t.add("driver", 0.0, 2.0, "update")
        t.add("executor-1", 0.0, 1.0, "compute")
        t.add("executor-1", 1.0, 2.0, "wait")
        t.add("executor-2", 0.0, 2.0, "compute")
        return t

    def test_summary_fractions(self, trace):
        s = summarize(trace)
        assert s.makespan == 2.0
        assert s.driver_busy_fraction == pytest.approx(1.0)
        assert s.executor_busy_fraction == pytest.approx(0.75)
        assert s.executor_wait_fraction == pytest.approx(0.25)

    def test_render_contains_all_nodes(self, trace):
        art = render_ascii(trace, width=20)
        assert "driver" in art
        assert "executor-1" in art
        assert "executor-2" in art

    def test_render_chars(self, trace):
        art = render_ascii(trace, width=20)
        lines = art.splitlines()
        driver_line = next(l for l in lines if l.strip().startswith("driver"))
        assert "U" in driver_line
        exec1 = next(l for l in lines if "executor-1" in l)
        assert "C" in exec1 and "." in exec1

    def test_driver_row_first(self, trace):
        art = render_ascii(trace, width=10)
        assert art.splitlines()[0].strip().startswith("driver")

    def test_empty_trace(self):
        assert render_ascii(Trace()) == "(empty trace)"

    def test_describe(self, trace):
        text = summarize(trace).describe()
        assert "makespan" in text


class TestReporting:
    def test_format_table_alignment(self):
        table = format_table(["name", "value"],
                             [["a", 1.0], ["longer", None]], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "-" in lines[2]
        assert "n/a" not in table
        assert "-" in lines[4]  # None renders as '-'

    def test_format_table_row_width_check(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_speedup(self):
        assert format_speedup(12.34) == "12.3x"
        assert format_speedup(None) == "n/c"
