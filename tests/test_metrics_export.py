"""Unit tests for repro.metrics.export."""

import csv
import json

import pytest

from repro.cluster import Trace
from repro.metrics import (TrainingHistory, history_to_rows,
                           write_histories_json, write_history_csv,
                           write_trace_csv)


@pytest.fixture
def history():
    h = TrainingHistory(system="MLlib*", dataset="avazu",
                        detail="hinge+l2(0.1)")
    h.record(0, 0.0, 1.0)
    h.record(1, 0.5, 0.7)
    h.record(2, 1.0, 0.5)
    return h


class TestHistoryToRows:
    def test_rows(self, history):
        rows = history_to_rows(history)
        assert len(rows) == 3
        assert rows[0] == {"system": "MLlib*", "dataset": "avazu",
                           "detail": "hinge+l2(0.1)", "step": 0,
                           "seconds": 0.0, "objective": 1.0}


class TestCsvExport:
    def test_round_trip(self, history, tmp_path):
        path = tmp_path / "h.csv"
        write_history_csv([history], path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[2]["objective"] == "0.5"
        assert rows[0]["system"] == "MLlib*"

    def test_multiple_histories_long_format(self, history, tmp_path):
        other = TrainingHistory(system="MLlib", dataset="avazu")
        other.record(0, 0.0, 1.0)
        path = tmp_path / "h.csv"
        write_history_csv([history, other], path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert {r["system"] for r in rows} == {"MLlib*", "MLlib"}

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_history_csv([], tmp_path / "x.csv")


class TestJsonExport:
    def test_structure(self, history, tmp_path):
        path = tmp_path / "h.json"
        write_histories_json([history], path)
        payload = json.loads(path.read_text())
        assert len(payload) == 1
        entry = payload[0]
        assert entry["system"] == "MLlib*"
        assert entry["steps"] == [0, 1, 2]
        assert entry["objectives"] == [1.0, 0.7, 0.5]
        assert entry["seconds"] == [0.0, 0.5, 1.0]

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_histories_json([], tmp_path / "x.json")


class TestTraceExport:
    def test_trace_csv(self, tmp_path):
        trace = Trace()
        trace.add("driver", 0.0, 1.0, "update", step=3)
        trace.add("executor-1", 0.0, 2.0, "compute", step=3)
        path = tmp_path / "t.csv"
        write_trace_csv(trace, path)
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["node"] == "driver"
        assert rows[0]["kind"] == "update"
        assert rows[1]["end"] == "2.0"
        assert rows[1]["step"] == "3"
