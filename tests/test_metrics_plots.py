"""Unit tests for repro.metrics.plots (ASCII convergence curves)."""

import pytest

from repro.metrics import TrainingHistory, render_curves


def make_history(system, points):
    h = TrainingHistory(system=system)
    for step, sec, obj in points:
        h.record(step, sec, obj)
    return h


@pytest.fixture
def two_histories():
    fast = make_history("MLlib*", [(0, 0.0, 1.0), (5, 0.5, 0.4),
                                   (10, 1.0, 0.2)])
    slow = make_history("MLlib", [(0, 0.0, 1.0), (50, 5.0, 0.8),
                                  (100, 10.0, 0.6)])
    return [fast, slow]


class TestRenderCurves:
    def test_contains_legend(self, two_histories):
        art = render_curves(two_histories)
        assert "*=MLlib*" in art
        assert "o=MLlib" in art

    def test_contains_axis_label(self, two_histories):
        assert "[steps]" in render_curves(two_histories, x_axis="steps")
        assert "[seconds]" in render_curves(two_histories,
                                            x_axis="seconds")

    def test_log_axis_label(self, two_histories):
        art = render_curves(two_histories, x_axis="seconds", log_x=True)
        assert "log10(seconds)" in art

    def test_glyphs_present(self, two_histories):
        art = render_curves(two_histories, width=60, height=12)
        body = art.split("[")[0]
        assert "*" in body
        assert "o" in body

    def test_threshold_line(self, two_histories):
        art = render_curves(two_histories, threshold=0.5)
        assert any(line.count("-") > 20 for line in art.splitlines())

    def test_y_labels_span_range(self, two_histories):
        art = render_curves(two_histories)
        assert "1.000" in art
        assert "0.200" in art

    def test_log_x_drops_nonpositive(self):
        h = make_history("X", [(0, 0.0, 1.0), (10, 1.0, 0.5)])
        art = render_curves([h], x_axis="steps", log_x=True)
        # Step 0 dropped; only one point remains, plot still renders.
        assert "X" in art

    def test_flat_curve_renders(self):
        h = make_history("flat", [(0, 0.0, 0.5), (1, 1.0, 0.5)])
        art = render_curves([h])
        assert "flat" in art

    def test_validation(self, two_histories):
        with pytest.raises(ValueError):
            render_curves([])
        with pytest.raises(ValueError):
            render_curves(two_histories, x_axis="epochs")
        with pytest.raises(ValueError):
            render_curves(two_histories, width=2)
        with pytest.raises(ValueError):
            render_curves([two_histories[0]] * 9)

    def test_all_points_unplottable(self):
        h = make_history("X", [(0, 0.0, 1.0)])
        assert render_curves([h], x_axis="seconds", log_x=True) == (
            "(no plottable points)")
