"""Execution backends: bit-identity, pool mechanics, profiler, CLI.

``TrainerConfig.backend`` is a wall-clock knob and nothing else: every
system must produce point-for-point identical histories and bit-identical
weights under ``serial``, ``threads``, ``processes``, ``shm`` and
``socket``.  The golden workload (tests/data/make_golden.py) is the
probe — it covers all nine systems with fixed seeds.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import numpy as np
import pytest

from data.make_golden import GOLDEN_PATH, SYSTEMS, golden_workload
from repro.core import TrainerConfig
from repro.data import Partition
from repro.engine.backend import (BACKENDS, ProcessBackend, SerialBackend,
                                  ThreadBackend, make_backend)
from repro.glm import Objective
from repro.perf.profiler import (NullProfiler, PhaseProfiler, measure)

#: Serial reference results, computed once per system — four backend
#: comparisons reuse the same baseline.
_SERIAL_MEMO: dict[str, object] = {}


def _run(system: str, backend: str):
    if backend == "serial" and system in _SERIAL_MEMO:
        return _SERIAL_MEMO[system]
    trainer_cls, loss = SYSTEMS[system]
    dataset, cluster, config = golden_workload()
    config = dataclasses.replace(config, backend=backend)
    objective = Objective(loss, "l2", 0.1)
    result = trainer_cls(objective, cluster, config).fit(dataset)
    if backend == "serial":
        _SERIAL_MEMO[system] = result
    return result


def _assert_matches_serial(system: str, backend: str) -> None:
    serial = _run(system, "serial")
    other = _run(system, backend)
    assert list(other.history.points) == list(serial.history.points)
    assert np.array_equal(other.model.weights, serial.model.weights)


class TestBackendBitIdentity:
    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_threads_match_serial(self, system):
        _assert_matches_serial(system, "threads")

    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_processes_match_serial(self, system):
        _assert_matches_serial(system, "processes")

    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_shm_matches_serial(self, system):
        _assert_matches_serial(system, "shm")

    @pytest.mark.parametrize("system", sorted(SYSTEMS))
    def test_socket_matches_serial(self, system):
        _assert_matches_serial(system, "socket")

    def test_processes_reproduce_golden_file(self):
        # The committed golden values were produced by the serial path;
        # the process pool must land on them too.
        golden = json.loads(Path(GOLDEN_PATH).read_text())
        result = _run("MLlib*", "processes")
        pinned = golden["MLlib*"]
        assert result.final_objective == pytest.approx(
            pinned["final_objective"], rel=1e-9)
        assert result.history.total_seconds == pytest.approx(
            pinned["total_seconds"], rel=1e-9)
        assert result.history.total_steps == pinned["total_steps"]


def _partitions(k: int = 3) -> list[Partition]:
    import scipy.sparse as sp
    parts = []
    for i in range(k):
        X = sp.random(4, 6, density=0.5, format="csr",
                      random_state=np.random.RandomState(i))
        parts.append(Partition(index=i, X=X,
                               y=np.full(4, float(i))))
    return parts


def _label_task(part: Partition, offset: float) -> float:
    return float(part.y[0]) + offset


class TestBackendMechanics:
    def test_make_backend_rejects_unknown(self):
        with pytest.raises(ValueError, match="backend"):
            make_backend("gpu")

    def test_backends_tuple_matches_config_validation(self):
        for name in BACKENDS:
            config = TrainerConfig(backend=name)
            assert config.backend == name
        with pytest.raises(ValueError, match="backend"):
            TrainerConfig(backend="bogus")

    @pytest.mark.parametrize("name", BACKENDS)
    def test_map_preserves_partition_order(self, name):
        backend = make_backend(name)
        try:
            backend.install_partitions(_partitions())
            got = backend.map_partitions(_label_task,
                                         [(10.0,), (20.0,), (30.0,)])
            assert got == [10.0, 21.0, 32.0]
        finally:
            backend.close()

    @pytest.mark.parametrize("name", BACKENDS)
    def test_run_one_targets_the_right_partition(self, name):
        backend = make_backend(name)
        try:
            backend.install_partitions(_partitions())
            assert backend.run_one(_label_task, 2, (0.5,)) == 2.5
        finally:
            backend.close()

    def test_pool_size_capped_by_partitions(self):
        backend = ThreadBackend(max_workers=None)
        backend.install_partitions(_partitions(2))
        assert backend._pool_size(2) <= 2
        backend.close()

    def test_close_is_idempotent(self):
        backend = ProcessBackend()
        backend.install_partitions(_partitions(2))
        backend.map_partitions(_label_task, [(0.0,), (0.0,)])
        backend.close()
        backend.close()

    def test_pool_backend_needs_partitions(self):
        # A plain RuntimeError, NOT an assert: the guard must survive
        # ``python -O`` stripping assert statements.
        backend = ThreadBackend()
        with pytest.raises(RuntimeError, match="install_partitions"):
            backend.map_partitions(_label_task, [(0.0,)])

    def test_serial_backend_is_the_post_fit_stub(self):
        # fit() leaves a SerialBackend installed so post-run introspection
        # (direct _run_step calls in tests) keeps working.
        backend = SerialBackend()
        backend.install_partitions(_partitions(1))
        assert backend.run_one(_label_task, 0, (1.0,)) == 1.0


class TestPhaseProfiler:
    def test_phases_accumulate(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("work"):
                pass
        stat = profiler.report()["work"]
        assert stat.calls == 3
        assert stat.wall >= 0.0
        assert stat.mean == pytest.approx(stat.wall / 3)

    def test_rows_shape_and_order(self):
        profiler = PhaseProfiler()
        with profiler.phase("a"):
            pass
        with profiler.phase("b"):
            pass
        rows = profiler.rows()
        assert [r[0] for r in rows] == ["a", "b"]  # first-seen order
        for row in rows:
            name, calls, wall, mean_ms = row
            assert calls == 1
            assert wall >= 0.0 and mean_ms >= 0.0

    def test_reset(self):
        profiler = PhaseProfiler()
        with profiler.phase("x"):
            pass
        profiler.reset()
        assert profiler.report() == {}

    def test_null_profiler_records_nothing(self):
        profiler = NullProfiler()
        with profiler.phase("x"):
            pass
        assert profiler.report() == {}

    def test_measure_returns_result_and_best(self):
        result, best = measure(lambda: 41 + 1, repeats=3)
        assert result == 42
        assert best >= 0.0

    def test_measure_rejects_zero_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            measure(lambda: None, repeats=0)

    def test_trainer_profiler_hook(self):
        from repro.core import MLlibStarTrainer
        dataset, cluster, config = golden_workload()
        trainer = MLlibStarTrainer(Objective("hinge", "l2", 0.1), cluster,
                                   config)
        trainer.profiler = PhaseProfiler()
        trainer.fit(dataset)
        report = trainer.profiler.report()
        assert report["superstep"].calls == config.max_steps
        assert report["local_solve"].calls == config.max_steps
        assert "evaluate" in report


class TestPerfCli:
    def test_perf_command_smoke(self, capsys, tmp_path):
        from repro.cli import main
        out = tmp_path / "perf.json"
        code = main(["perf", "--rows", "60", "--features", "400",
                     "--repeats", "1", "--steps", "2", "--executors", "2",
                     "--skip-backends", "--out", str(out)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "sgd_lazy_l2" in captured
        payload = json.loads(out.read_text())
        assert all(e["bit_identical"] for e in payload["kernels"])

    def test_train_with_processes_backend(self, capsys):
        from repro.cli import main
        code = main(["train", "--system", "MLlib*",
                     "--dataset", "tests/data/tiny.libsvm",
                     "--executors", "2", "--steps", "2",
                     "--eval-every", "2", "--backend", "processes"])
        assert code == 0
        assert "final objective" in capsys.readouterr().out
