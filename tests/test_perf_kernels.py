"""Fast kernels vs reference implementations: bit-identity and units.

The wall-clock fast path (:mod:`repro.glm.kernels`) is only legitimate
if it is a pure speed change: every kernel must produce bit-for-bit the
results of the retained reference bodies (:mod:`repro.glm.reference`)
on every input shape, density, chunk size and regularizer.  Hypothesis
drives the epoch solvers through both paths and compares weights, stats
and RNG end-states exactly — no tolerances anywhere in this file.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.glm import (Objective, apply_update, apply_update_inplace,
                       chunk_grad_touched, chunk_margins, mgd_epoch,
                       permuted_epoch, sgd_epoch, touched_columns,
                       use_reference_kernels)
from repro.glm.lazy_update import ScaledVector


def make_problem(n_rows: int, n_features: int, density: float, seed: int):
    X = sp.random(n_rows, n_features, density=density, format="csr",
                  random_state=np.random.RandomState(seed))
    X.sum_duplicates()
    X.sort_indices()
    rng = np.random.default_rng(seed)
    y = np.where(rng.random(n_rows) < 0.5, -1.0, 1.0)
    w0 = rng.standard_normal(n_features) * 0.1
    return X, y, w0


REGULARIZERS = [None, ("l2", 0.1), ("l1", 0.01)]


def make_objective(loss: str, reg) -> Objective:
    return Objective(loss) if reg is None else Objective(loss, *reg)


problem_params = st.tuples(
    st.integers(min_value=1, max_value=60),       # rows
    st.integers(min_value=4, max_value=200),      # features
    st.floats(min_value=0.02, max_value=0.6),     # density
    st.integers(min_value=0, max_value=10_000),   # seed
)


class TestSgdEpochBitIdentity:
    @given(params=problem_params,
           loss=st.sampled_from(["hinge", "logistic", "squared"]),
           reg=st.sampled_from(REGULARIZERS),
           chunk_size=st.sampled_from([1, 3, 16, 64]),
           shuffle=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_fast_equals_reference(self, params, loss, reg, chunk_size,
                                   shuffle):
        n, m, density, seed = params
        X, y, w0 = make_problem(n, m, density, seed)
        objective = make_objective(loss, reg)
        rng_fast = np.random.default_rng(seed + 1)
        rng_ref = np.random.default_rng(seed + 1)
        w_fast, stats_fast = sgd_epoch(objective, w0, X, y, 0.05, rng_fast,
                                       chunk_size=chunk_size,
                                       shuffle=shuffle)
        with use_reference_kernels():
            w_ref, stats_ref = sgd_epoch(objective, w0, X, y, 0.05,
                                         rng_ref, chunk_size=chunk_size,
                                         shuffle=shuffle)
        assert np.array_equal(w_fast, w_ref)
        assert stats_fast == stats_ref
        # Both paths must consume the RNG identically (one permutation).
        assert (rng_fast.bit_generator.state
                == rng_ref.bit_generator.state)

    @given(params=problem_params,
           loss=st.sampled_from(["hinge", "logistic", "squared"]),
           reg=st.sampled_from(REGULARIZERS),
           batch_size=st.sampled_from([1, 5, 32]))
    @settings(max_examples=60, deadline=None)
    def test_mgd_fast_equals_reference(self, params, loss, reg, batch_size):
        n, m, density, seed = params
        X, y, w0 = make_problem(n, m, density, seed)
        objective = make_objective(loss, reg)
        rng_fast = np.random.default_rng(seed + 2)
        rng_ref = np.random.default_rng(seed + 2)
        w_fast, stats_fast = mgd_epoch(objective, w0, X, y, 0.05,
                                       batch_size, rng_fast)
        with use_reference_kernels():
            w_ref, stats_ref = mgd_epoch(objective, w0, X, y, 0.05,
                                         batch_size, rng_ref)
        assert np.array_equal(w_fast, w_ref)
        assert stats_fast == stats_ref


class TestKernelUnits:
    @given(params=problem_params)
    @settings(max_examples=40, deadline=None)
    def test_touched_columns_is_unique(self, params):
        n, m, density, seed = params
        X, _, _ = make_problem(n, m, density, seed)
        got = touched_columns(X.indices)
        assert np.array_equal(got, np.unique(X.indices))

    def test_touched_columns_empty(self):
        idx = np.zeros(0, dtype=np.int32)
        assert touched_columns(idx).size == 0

    def test_touched_columns_single_row_skips_sort(self):
        # A canonical CSR row is already sorted and duplicate-free.
        idx = np.array([2, 5, 9], dtype=np.int32)
        assert touched_columns(idx, single_row=True) is idx

    @given(params=problem_params)
    @settings(max_examples=40, deadline=None)
    def test_chunk_margins_matches_matvec(self, params):
        n, m, density, seed = params
        X, _, _ = make_problem(n, m, density, seed)
        v = np.random.default_rng(seed + 3).standard_normal(m)
        got = chunk_margins(X.indices, X.data, np.diff(X.indptr), v, n)
        assert np.array_equal(got, X @ v)

    @given(params=problem_params)
    @settings(max_examples=40, deadline=None)
    def test_chunk_grad_touched_matches_dense(self, params):
        n, m, density, seed = params
        X, _, _ = make_problem(n, m, density, seed)
        factor = np.random.default_rng(seed + 4).standard_normal(n)
        touched = touched_columns(X.indices)
        got = chunk_grad_touched(X.indices, X.data, np.diff(X.indptr),
                                 factor, touched)
        dense = np.asarray(X.T @ factor) / n
        assert np.array_equal(got, dense[touched])
        # Everything off the support is exactly zero in the dense version.
        mask = np.ones(m, dtype=bool)
        mask[touched] = False
        assert not np.any(dense[mask])

    @given(m=st.integers(min_value=1, max_value=100),
           seed=st.integers(min_value=0, max_value=1000),
           loss=st.sampled_from(["hinge", "squared"]),
           reg=st.sampled_from(REGULARIZERS))
    @settings(max_examples=40, deadline=None)
    def test_apply_update_inplace_matches(self, m, seed, loss, reg):
        rng = np.random.default_rng(seed)
        w = rng.standard_normal(m)
        grad = rng.standard_normal(m)
        objective = make_objective(loss, reg)
        expected = apply_update(w, grad, 0.1, objective)
        got = apply_update_inplace(np.array(w, copy=True), grad, 0.1,
                                   objective, np.empty(m))
        assert np.array_equal(got, expected)

    def test_permuted_epoch_matches_gather(self):
        X, y, _ = make_problem(40, 30, 0.2, 5)
        order = np.random.default_rng(9).permutation(40)
        Xp, yp = permuted_epoch(X, y, order, shuffle=True)
        for a, b in [(0, 7), (7, 40), (13, 13), (20, 55)]:
            assert np.array_equal(Xp[a:b].toarray(), X[order[a:b]].toarray())
        assert np.array_equal(yp, y[order])

    def test_permuted_epoch_no_shuffle_is_passthrough(self):
        X, y, _ = make_problem(10, 8, 0.3, 6)
        Xp, yp = permuted_epoch(X, y, np.arange(10), shuffle=False)
        assert Xp is X and yp is y


class TestScaledVectorValuesView:
    def test_view_tracks_storage(self):
        sv = ScaledVector(np.array([1.0, 2.0, 3.0]))
        sv.axpy_sparse(1.0, np.array([1]), np.array([5.0]))
        assert np.array_equal(sv.values, [1.0, 7.0, 3.0])

    def test_view_is_read_only(self):
        sv = ScaledVector(np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            sv.values[0] = 9.0
        # The write protection must not leak back into the storage.
        sv.axpy_dense(1.0, np.array([1.0, 1.0]))
        assert np.array_equal(sv.to_array(), [2.0, 3.0])


class TestReferenceModeSwitch:
    def test_mode_restored_after_exception(self):
        from repro.glm import local_solvers
        try:
            with use_reference_kernels():
                assert local_solvers._KERNEL_MODE[0] == "reference"
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert local_solvers._KERNEL_MODE[0] == "fast"
