"""Unit tests for repro.planner (analytic step-cost advisor)."""

import pytest

from repro.cluster import cluster1
from repro.planner import (ADVISABLE_SYSTEMS, WorkloadProfile,
                           estimate_step_cost, rank_systems)


@pytest.fixture
def big_model_profile():
    return WorkloadProfile(model_size=5_000_000,
                           nnz_per_step_per_worker=100_000)


@pytest.fixture
def small_model_profile():
    return WorkloadProfile(model_size=500,
                           nnz_per_step_per_worker=100_000)


class TestWorkloadProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile(model_size=0, nnz_per_step_per_worker=1)
        with pytest.raises(ValueError):
            WorkloadProfile(model_size=1, nnz_per_step_per_worker=-1)


class TestEstimateStepCost:
    def test_every_system_priced(self, big_model_profile):
        cluster = cluster1()
        for system in ADVISABLE_SYSTEMS:
            cost = estimate_step_cost(system, cluster, big_model_profile)
            assert cost.total > 0
            assert cost.system == system

    def test_unknown_system(self, big_model_profile):
        with pytest.raises(KeyError):
            estimate_step_cost("Horovod", cluster1(), big_model_profile)

    def test_mllib_has_driver_component(self, big_model_profile):
        cost = estimate_step_cost("MLlib", cluster1(), big_model_profile)
        assert cost.driver > 0

    def test_star_has_no_driver_component(self, big_model_profile):
        cost = estimate_step_cost("MLlib*", cluster1(), big_model_profile)
        assert cost.driver == 0.0

    def test_star_comm_beats_driver_path_for_big_models(
            self, big_model_profile):
        cluster = cluster1()
        star = estimate_step_cost("MLlib*", cluster, big_model_profile)
        mllib = estimate_step_cost("MLlib", cluster, big_model_profile)
        assert star.communication + star.driver < (
            mllib.communication + mllib.driver) / 2

    def test_small_models_are_latency_bound(self, small_model_profile):
        """With a tiny model, AllReduce's extra messages erode the win."""
        cluster = cluster1()
        star = estimate_step_cost("MLlib*", cluster, small_model_profile)
        mllib = estimate_step_cost("MLlib", cluster, small_model_profile)
        big_gap = (mllib.communication + mllib.driver) / max(
            1e-12, star.communication)
        assert big_gap < 3  # no large advantage at this scale

    def test_describe(self, big_model_profile):
        text = estimate_step_cost("MLlib", cluster1(),
                                  big_model_profile).describe()
        assert "MLlib" in text and "driver" in text


class TestRankSystems:
    def test_sorted_cheapest_first(self, big_model_profile):
        costs = rank_systems(cluster1(), big_model_profile)
        totals = [c.total for c in costs]
        assert totals == sorted(totals)
        assert len(costs) == len(ADVISABLE_SYSTEMS)

    def test_star_wins_big_models(self, big_model_profile):
        """For communication-dominated workloads the advisor must put the
        AllReduce and PS systems ahead of driver-centric MLlib."""
        costs = rank_systems(cluster1(), big_model_profile)
        order = [c.system for c in costs]
        assert order.index("MLlib*") < order.index("MLlib")
        assert order.index("MLlib*") < order.index("MLlib+MA")


class TestPredictionMatchesMeasurement:
    def test_star_step_cost_close_to_measured(self):
        """The advisor prices the same phases the trainer executes, so the
        prediction should sit near a measured homogeneous-cluster run."""
        from repro.core import MLlibStarTrainer, TrainerConfig
        from repro.data import SyntheticSpec, generate
        from repro.glm import Objective

        dataset = generate(SyntheticSpec(n_rows=2000, n_features=5000,
                                         nnz_per_row=10.0, seed=3), "pred")
        cluster = cluster1(executors=4)
        cfg = TrainerConfig(max_steps=4, local_chunk_size=64, seed=1)
        result = MLlibStarTrainer(Objective("hinge"), cluster, cfg).fit(
            dataset)
        measured_per_step = result.history.total_seconds / 4

        nnz_per_worker = dataset.nnz / 4
        profile = WorkloadProfile(model_size=5000,
                                  nnz_per_step_per_worker=nnz_per_worker)
        predicted = estimate_step_cost("MLlib*", cluster1(executors=4),
                                       profile).total
        assert predicted == pytest.approx(measured_per_step, rel=0.5)
