"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.cluster import NetworkModel
from repro.collectives import (all_gather, all_reduce_average,
                               partition_slices, reduce_scatter)
from repro.engine.shuffle import exchange
from repro.glm.lazy_update import ScaledVector
from repro.glm.losses import HingeLoss, LogisticLoss, SquaredLoss


finite_floats = st.floats(min_value=-50, max_value=50, allow_nan=False)


@st.composite
def model_lists(draw):
    k = draw(st.integers(min_value=1, max_value=8))
    m = draw(st.integers(min_value=8, max_value=64))
    models = [
        np.array(draw(st.lists(finite_floats, min_size=m, max_size=m)))
        for _ in range(k)
    ]
    return models


class TestAllReduceProperties:
    @given(models=model_lists())
    @settings(max_examples=50, deadline=None)
    def test_allreduce_equals_mean(self, models):
        got = all_reduce_average(models)
        assert np.allclose(got, np.mean(models, axis=0), atol=1e-9)

    @given(models=model_lists())
    @settings(max_examples=50, deadline=None)
    def test_reduce_scatter_sum_equals_sum(self, models):
        partitions = reduce_scatter(models, combine="sum")
        full = all_gather(partitions, models[0].shape[0])
        assert np.allclose(full, np.sum(models, axis=0), atol=1e-9)

    @given(m=st.integers(min_value=1, max_value=500),
           k=st.integers(min_value=1, max_value=32))
    @settings(max_examples=100, deadline=None)
    def test_partition_slices_partition_the_range(self, m, k):
        if m < k:
            return  # invalid configuration, covered by unit tests
        slices = partition_slices(m, k)
        covered = np.zeros(m, dtype=int)
        for s in slices:
            covered[s] += 1
        assert np.all(covered == 1)
        sizes = [s.stop - s.start for s in slices]
        assert max(sizes) - min(sizes) <= 1


class TestShuffleProperties:
    @given(st.lists(st.dictionaries(st.integers(0, 5),
                                    st.integers(-100, 100), max_size=6),
                    min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_exchange_conserves_messages(self, outboxes):
        k = 6
        inboxes = exchange(outboxes, num_workers=k)
        sent = sorted(v for box in outboxes for v in box.values())
        received = sorted(v for box in inboxes for v in box)
        assert sent == received


class TestLazyVectorProperties:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_matches_dense_reference(self, data):
        dim = data.draw(st.integers(min_value=2, max_value=30))
        w = np.array(data.draw(st.lists(finite_floats, min_size=dim,
                                        max_size=dim)))
        sv = ScaledVector(w)
        ref = w.copy()
        n_ops = data.draw(st.integers(min_value=1, max_value=30))
        for _ in range(n_ops):
            if data.draw(st.booleans()):
                factor = data.draw(st.floats(min_value=0.1, max_value=1.5))
                sv.decay(factor)
                ref = factor * ref
            else:
                idx = data.draw(st.integers(min_value=0, max_value=dim - 1))
                val = data.draw(finite_floats)
                sv.axpy_sparse(1.0, np.array([idx]), np.array([val]))
                ref[idx] += val
        assert np.allclose(sv.to_array(), ref, atol=1e-6, rtol=1e-6)


class TestLossProperties:
    @given(margins=hnp.arrays(np.float64, st.integers(1, 30),
                              elements=finite_floats),
           flip=st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_losses_nonnegative(self, margins, flip):
        y = np.where(margins >= 0, 1.0, -1.0)
        if flip:
            y = -y
        for loss in (HingeLoss(), LogisticLoss(), SquaredLoss()):
            assert loss.value(margins, y) >= 0.0

    @given(margins=hnp.arrays(np.float64, st.integers(1, 30),
                              elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_gradient_factor_shape_and_finite(self, margins):
        y = np.ones_like(margins)
        for loss in (HingeLoss(), LogisticLoss(), SquaredLoss()):
            g = loss.gradient_factor(margins, y)
            assert g.shape == margins.shape
            assert np.all(np.isfinite(g))

    @given(margin=finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_hinge_factor_is_subgradient(self, margin):
        """Hinge factor must lie in the subdifferential at every point."""
        loss = HingeLoss()
        g = loss.gradient_factor(np.array([margin]), np.array([1.0]))[0]
        assert g in (-1.0, 0.0)


class TestNetworkProperties:
    @given(values=st.floats(min_value=0, max_value=1e9),
           extra=st.floats(min_value=0, max_value=1e9))
    @settings(max_examples=50, deadline=None)
    def test_transfer_monotone(self, values, extra):
        net = NetworkModel()
        assert net.transfer_seconds(values + extra) >= (
            net.transfer_seconds(values))

    @given(senders=st.integers(min_value=0, max_value=100),
           values=st.floats(min_value=1, max_value=1e7))
    @settings(max_examples=50, deadline=None)
    def test_fan_in_linear_in_senders(self, senders, values):
        net = NetworkModel()
        assert net.fan_in_seconds(senders, values) == (
            senders * net.transfer_seconds(values))
