"""Property-based tests for the AllReduce collectives (hypothesis).

Three families of invariants:

* **Correctness** — ``all_reduce_average`` equals ``np.mean`` exactly for
  any worker count and model size, including the degenerate single-worker
  and one-coordinate-per-owner cases.
* **Traffic** — the paper's ``2 k m`` figure: one AllReduce moves exactly
  ``2 (k - 1) m`` values regardless of how the coordinates are split, and
  the split itself covers the model with sizes differing by at most one.
* **Recovery** — a failed-then-recovered owner whose peers re-send their
  pieces recombines its partition to exactly the value of the original,
  failure-free run (the redo path is deterministic).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives import (all_gather, all_reduce_average,
                               partition_slices, reduce_scatter,
                               traffic_values)

finite_floats = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def worker_models(draw, min_workers=1, max_workers=10):
    """k local models of a common size m >= k (valid AllReduce input)."""
    k = draw(st.integers(min_value=min_workers, max_value=max_workers))
    m = draw(st.integers(min_value=k, max_value=96))
    models = [
        np.array(draw(st.lists(finite_floats, min_size=m, max_size=m)))
        for _ in range(k)
    ]
    return models


class TestAllReduceEqualsMean:
    @given(models=worker_models())
    @settings(max_examples=60, deadline=None)
    def test_equals_numpy_mean(self, models):
        got = all_reduce_average(models)
        np.testing.assert_allclose(got, np.mean(models, axis=0),
                                   atol=1e-9, rtol=1e-12)

    @given(models=worker_models(min_workers=2))
    @settings(max_examples=30, deadline=None)
    def test_every_owner_slice_matches_mean(self, models):
        """Each owner's combined partition is the mean restricted to its
        slice — the intermediate state is already correct per-owner."""
        k, m = len(models), models[0].shape[0]
        partitions = reduce_scatter(models, combine="average")
        mean = np.mean(models, axis=0)
        for owner, sl in enumerate(partition_slices(m, k)):
            np.testing.assert_allclose(partitions[owner], mean[sl],
                                       atol=1e-9)


class TestTrafficInvariant:
    @given(k=st.integers(min_value=1, max_value=64),
           m=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_two_k_m(self, k, m):
        assert traffic_values(m, k) == 2.0 * (k - 1) * m

    @given(k=st.integers(min_value=1, max_value=64),
           m=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_slices_partition_the_model(self, k, m):
        if m < k:
            # More owners than coordinates: a clear error, not an empty
            # slice (the num_executors > model_size regression).
            with pytest.raises(ValueError, match="cannot be split"):
                partition_slices(m, k)
            return
        slices = partition_slices(m, k)
        assert len(slices) == k
        assert slices[0].start == 0 and slices[-1].stop == m
        sizes = [s.stop - s.start for s in slices]
        assert all(size >= 1 for size in sizes)
        assert max(sizes) - min(sizes) <= 1
        for a, b in zip(slices, slices[1:]):
            assert a.stop == b.start

    @given(models=worker_models(min_workers=2))
    @settings(max_examples=30, deadline=None)
    def test_measured_traffic_matches_formula(self, models):
        """Count the values actually crossing worker boundaries in both
        phases; they must equal ``traffic_values`` exactly."""
        k, m = len(models), models[0].shape[0]
        slices = partition_slices(m, k)
        sizes = [s.stop - s.start for s in slices]
        # Phase 1: worker r ships every non-owned slice of its model.
        phase1 = sum(sizes[owner] for r in range(k)
                     for owner in range(k) if owner != r)
        # Phase 2: owner o ships its combined slice to every peer.
        phase2 = sum(sizes[owner] * (k - 1) for owner in range(k))
        assert phase1 + phase2 == traffic_values(m, k)


class TestFailedOwnerRecovery:
    @given(models=worker_models(min_workers=2),
           data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_recovered_owner_recombines_identically(self, models, data):
        """Crash an owner after reduce_scatter, have every peer re-send
        its piece, recombine — the result is bit-identical to the
        failure-free partition, and the final AllGather to the mean."""
        k, m = len(models), models[0].shape[0]
        failed = data.draw(st.integers(min_value=0, max_value=k - 1),
                           label="failed owner")
        reference = reduce_scatter(models, combine="average")

        partitions = reduce_scatter(models, combine="average")
        # The crash: the owner's combined partition and received pieces
        # are gone.  Peers re-send slice `failed` of their local models
        # (deterministic redo of the same inputs).
        sl = partition_slices(m, k)[failed]
        resent = [model[sl] for model in models]
        partitions[failed] = np.vstack(resent).sum(axis=0) / k

        np.testing.assert_array_equal(partitions[failed],
                                      reference[failed])
        np.testing.assert_allclose(
            all_gather(partitions, m), np.mean(models, axis=0), atol=1e-9)

    @given(models=worker_models(min_workers=2))
    @settings(max_examples=20, deadline=None)
    def test_allreduce_deterministic_across_repeats(self, models):
        """Re-running the collective (the recovery redo) cannot change the
        answer: two evaluations are bit-identical."""
        first = all_reduce_average(models)
        second = all_reduce_average([m.copy() for m in models])
        np.testing.assert_array_equal(first, second)
