"""Property-based tests for the L-BFGS optimizer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.glm.lbfgs import LbfgsState, minimize, wolfe_line_search


@st.composite
def spd_quadratics(draw):
    """Random well-posed quadratic: f = 0.5 w'Aw - b'w, A diagonal SPD."""
    dim = draw(st.integers(min_value=1, max_value=8))
    eigs = np.array(draw(st.lists(
        st.floats(min_value=0.1, max_value=100.0), min_size=dim,
        max_size=dim)))
    b = np.array(draw(st.lists(
        st.floats(min_value=-10, max_value=10), min_size=dim,
        max_size=dim)))
    return np.diag(eigs), b


class TestMinimizeProperties:
    @given(problem=spd_quadratics())
    @settings(max_examples=30, deadline=None)
    def test_finds_quadratic_minimum(self, problem):
        A, b = problem

        def fg(w):
            return 0.5 * float(w @ A @ w) - float(b @ w), A @ w - b

        result = minimize(fg, np.zeros(b.shape[0]), max_iters=200,
                          gtol=1e-6)
        solution = np.linalg.solve(A, b)
        # Either the gradient test fired, or the line search hit the
        # numerical floor essentially at the optimum.
        assert result.converged or np.allclose(result.w, solution,
                                               atol=1e-3)
        assert np.allclose(result.w, solution, atol=1e-3)

    @given(problem=spd_quadratics())
    @settings(max_examples=30, deadline=None)
    def test_objective_never_increases(self, problem):
        A, b = problem
        values = []

        def fg(w):
            value = 0.5 * float(w @ A @ w) - float(b @ w)
            values.append(value)
            return value, A @ w - b

        minimize(fg, np.zeros(b.shape[0]), max_iters=50)
        # Accepted iterates decrease; probes may be anywhere, so check the
        # running minimum is the last accepted value's neighbourhood.
        assert min(values) <= values[0] + 1e-12


class TestWolfeProperties:
    @given(problem=spd_quadratics(),
           scale=st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=30, deadline=None)
    def test_accepted_step_satisfies_both_conditions(self, problem, scale):
        A, b = problem
        dim = b.shape[0]

        def fg(w):
            return 0.5 * float(w @ A @ w) - float(b @ w), A @ w - b

        w = scale * np.ones(dim)
        fval, grad = fg(w)
        if np.linalg.norm(grad) < 1e-10:
            return  # already optimal; nothing to search
        direction = -grad
        res = wolfe_line_search(fg, w, direction, fval, grad)
        assert res.success
        c1, c2 = 1e-4, 0.9
        slope0 = float(grad @ direction)
        new_f, new_g = fg(w + res.step * direction)
        assert new_f <= fval + c1 * res.step * slope0 + 1e-9
        assert abs(float(new_g @ direction)) <= -c2 * slope0 + 1e-9

    @given(problem=spd_quadratics())
    @settings(max_examples=30, deadline=None)
    def test_curvature_pairs_always_accepted_after_wolfe(self, problem):
        """Strong Wolfe guarantees s.y > 0, so pushes never get rejected."""
        A, b = problem
        dim = b.shape[0]

        def fg(w):
            return 0.5 * float(w @ A @ w) - float(b @ w), A @ w - b

        state = LbfgsState(memory=5)
        w = np.ones(dim)
        fval, grad = fg(w)
        for _ in range(5):
            # Stop well above the CURVATURE_EPS floor: at tiny gradients
            # s.y is positive but numerically negligible by design.
            if np.linalg.norm(grad) < 1e-4:
                break
            d = state.direction(grad)
            res = wolfe_line_search(fg, w, d, fval, grad)
            if not res.success:
                break
            new_w = w + res.step * d
            assert res.grad is not None
            assert state.push(new_w - w, res.grad - grad)
            w, fval, grad = new_w, res.fval, res.grad
