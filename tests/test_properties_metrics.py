"""Property-based tests for evaluation metrics and the history machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.glm import evaluate_binary, roc_auc
from repro.metrics import TrainingHistory


finite = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def scored_labels(draw):
    n = draw(st.integers(min_value=1, max_value=60))
    margins = np.array(draw(st.lists(finite, min_size=n, max_size=n)))
    y = np.array([draw(st.sampled_from([-1.0, 1.0])) for _ in range(n)])
    return margins, y


class TestMetricProperties:
    @given(data=scored_labels())
    @settings(max_examples=60, deadline=None)
    def test_auc_in_unit_interval(self, data):
        margins, y = data
        assert 0.0 <= roc_auc(margins, y) <= 1.0

    @given(data=scored_labels())
    @settings(max_examples=60, deadline=None)
    def test_auc_antisymmetric_under_negation(self, data):
        """Flipping all margins must mirror the AUC around 0.5."""
        margins, y = data
        if np.all(y > 0) or np.all(y < 0):
            return  # degenerate: AUC fixed at 0.5 either way
        a = roc_auc(margins, y)
        b = roc_auc(-margins, y)
        assert a + b == pytest.approx(1.0)

    @given(data=scored_labels())
    @settings(max_examples=60, deadline=None)
    def test_all_rates_in_unit_interval(self, data):
        margins, y = data
        m = evaluate_binary(margins, y)
        for value in (m.accuracy, m.precision, m.recall, m.f1, m.auc):
            assert 0.0 <= value <= 1.0

    @given(data=scored_labels())
    @settings(max_examples=60, deadline=None)
    def test_f1_is_harmonic_mean(self, data):
        margins, y = data
        m = evaluate_binary(margins, y)
        if m.precision + m.recall > 0:
            expected = 2 * m.precision * m.recall / (m.precision + m.recall)
            assert abs(m.f1 - expected) < 1e-12
        else:
            assert m.f1 == 0.0


class TestHistoryProperties:
    @given(st.lists(st.tuples(st.integers(0, 1000),
                              st.floats(0, 1e6, allow_nan=False),
                              finite),
                    min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_monotone_records_always_accepted(self, raw):
        # Build jointly monotone step/time axes from the drawn values.
        steps = sorted(t[0] for t in raw)
        seconds = sorted(t[1] for t in raw)
        objectives = [t[2] for t in raw]
        h = TrainingHistory("prop")
        for step, sec, obj in zip(steps, seconds, objectives):
            h.record(step, sec, obj)
        assert len(h) == len(raw)
        assert h.best_objective == min(objectives)
        assert h.total_steps == steps[-1]

    @given(objectives=st.lists(finite, min_size=1, max_size=30),
           threshold=finite)
    @settings(max_examples=60, deadline=None)
    def test_first_reaching_is_earliest(self, objectives, threshold):
        h = TrainingHistory("prop")
        for i, obj in enumerate(objectives):
            h.record(i, float(i), obj)
        hit = h.first_reaching(threshold)
        if hit is None:
            assert all(o > threshold for o in objectives)
        else:
            assert objectives[hit.step] <= threshold
            assert all(o > threshold for o in objectives[:hit.step])
