"""Tests for the asynchronous SGD trainer (real staleness numerics)."""

import numpy as np
import pytest

from repro.cluster import cluster1, cluster2
from repro.core import TrainerConfig
from repro.glm import Objective
from repro.ps import AsyncSgdTrainer


CFG = TrainerConfig(max_steps=20, learning_rate=0.2, batch_fraction=0.1,
                    seed=1)


class TestAsyncSgd:
    def test_objective_decreases(self, tiny_dataset, small_cluster):
        result = AsyncSgdTrainer(Objective("hinge"), small_cluster,
                                 CFG).fit(tiny_dataset)
        assert result.final_objective < result.history.objectives()[0]

    def test_updates_per_step_equals_workers(self, tiny_dataset,
                                             small_cluster):
        trainer = AsyncSgdTrainer(Objective("hinge"), small_cluster, CFG)
        trainer.fit(tiny_dataset)
        # 20 steps x 4 workers pushes, each logged once.
        assert len(trainer.staleness_log) == 20 * 4

    def test_staleness_positive_with_multiple_workers(self, tiny_dataset,
                                                      small_cluster):
        trainer = AsyncSgdTrainer(Objective("hinge"), small_cluster, CFG)
        trainer.fit(tiny_dataset)
        assert trainer.mean_staleness > 0

    def test_staleness_zero_with_single_worker(self, tiny_dataset):
        from repro.cluster import ClusterSpec, homogeneous_nodes
        solo = ClusterSpec(nodes=homogeneous_nodes(2))
        trainer = AsyncSgdTrainer(Objective("hinge"), solo, CFG)
        trainer.fit(tiny_dataset)
        assert trainer.mean_staleness == 0.0

    def test_staleness_grows_with_workers(self, small_dataset):
        def staleness(k):
            trainer = AsyncSgdTrainer(Objective("hinge"),
                                      cluster1(executors=k), CFG)
            trainer.fit(small_dataset)
            return trainer.mean_staleness
        assert staleness(8) > staleness(2)

    def test_clock_monotone_and_no_waits(self, tiny_dataset, small_cluster):
        result = AsyncSgdTrainer(Objective("hinge"), small_cluster,
                                 CFG).fit(tiny_dataset)
        secs = result.history.seconds()
        assert secs == sorted(secs)
        # ASP never blocks: no wait spans at all.
        for node in result.trace.nodes():
            assert result.trace.wait_seconds(node) == 0.0

    def test_deterministic(self, tiny_dataset, small_cluster):
        a = AsyncSgdTrainer(Objective("hinge"), small_cluster, CFG).fit(
            tiny_dataset)
        b = AsyncSgdTrainer(Objective("hinge"), small_cluster, CFG).fit(
            tiny_dataset)
        assert np.array_equal(a.model.weights, b.model.weights)

    def test_warm_start(self, tiny_dataset, small_cluster):
        obj = Objective("hinge")
        first = AsyncSgdTrainer(obj, small_cluster, CFG).fit(tiny_dataset)
        resumed = AsyncSgdTrainer(obj, small_cluster, CFG).fit(
            tiny_dataset, initial_weights=first.model.weights)
        assert resumed.history.objectives()[0] == pytest.approx(
            first.final_objective)

    def test_fast_workers_push_more_on_heterogeneous_cluster(
            self, small_dataset):
        """No barrier: a much faster worker completes more cycles.

        The cluster is configured compute-bound (cheap network, expensive
        compute) so node speed, not message latency, sets the cycle time.
        """
        from repro.cluster import (ClusterSpec, ComputeCostModel,
                                   NetworkModel, NodeSpec)
        nodes = [NodeSpec(node_id=0),
                 NodeSpec(node_id=1, speed=4.0),
                 NodeSpec(node_id=2, speed=1.0)]
        cluster = ClusterSpec(
            nodes=nodes,
            network=NetworkModel(alpha=1e-6),
            compute=ComputeCostModel(sec_per_nnz=1e-5))
        trainer = AsyncSgdTrainer(
            Objective("hinge"), cluster,
            CFG.with_overrides(max_steps=40, batch_fraction=0.5))
        result = trainer.fit(small_dataset)
        fast_sends = sum(1 for s in result.trace.spans_for("worker-1")
                         if s.kind == "send")
        slow_sends = sum(1 for s in result.trace.spans_for("worker-2")
                         if s.kind == "send")
        assert fast_sends > slow_sends

    def test_beats_bsp_wall_clock_under_stragglers(self, small_dataset):
        """The reference-[13] claim: async hides straggler latency."""
        from repro.core import MLlibTrainer
        obj = Objective("hinge")
        cfg = CFG.with_overrides(max_steps=30)
        asgd = AsyncSgdTrainer(
            obj, cluster2(machines=8, straggler_sigma=0.5, seed=4),
            cfg).fit(small_dataset)
        bsp = MLlibTrainer(
            obj, cluster2(machines=8, straggler_sigma=0.5, seed=4),
            cfg).fit(small_dataset)
        # 8x the updates in less simulated time.
        assert asgd.history.total_seconds < bsp.history.total_seconds
        assert asgd.final_objective <= bsp.final_objective + 0.05
