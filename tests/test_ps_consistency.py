"""Unit tests for repro.ps.consistency (BSP/SSP/ASP admission rules)."""

import pytest

from repro.ps.consistency import ASP, BSP, SSP, get_controller


class TestBSP:
    def test_blocks_on_slowest_peer(self):
        bsp = BSP()
        # Worker wants step 1; peers finished step 0 at times 2.0 and 5.0.
        release = bsp.release_time(1, own_ready=1.0,
                                   peer_finish_times=[[2.0], [5.0]])
        assert release == 5.0

    def test_first_step_never_blocks(self):
        bsp = BSP()
        assert bsp.release_time(0, 0.0, [[], []]) == 0.0

    def test_raises_when_peer_lags_too_far(self):
        bsp = BSP()
        with pytest.raises(ValueError, match="peer"):
            bsp.release_time(2, 0.0, [[1.0], []])


class TestSSP:
    def test_allows_bounded_lead(self):
        ssp = SSP(staleness=2)
        # Step 2 with staleness 2 requires peers at step -1 => no block.
        assert ssp.release_time(2, 3.0, [[1.0], [9.0]]) == 3.0

    def test_blocks_past_staleness(self):
        ssp = SSP(staleness=1)
        # Step 2 requires every peer to have finished step 0.
        release = ssp.release_time(2, 3.0, [[4.0, 6.0], [7.0, 8.0]])
        assert release == 7.0

    def test_staleness_zero_equals_bsp(self):
        ssp = SSP(staleness=0)
        bsp = BSP()
        peers = [[2.0], [5.0]]
        assert ssp.release_time(1, 1.0, peers) == (
            bsp.release_time(1, 1.0, peers))

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError):
            SSP(staleness=-1)


class TestASP:
    def test_never_blocks(self):
        asp = ASP()
        assert asp.release_time(100, 3.5, [[1.0] * 5, []]) == 3.5


class TestRegistry:
    def test_get_controller(self):
        assert isinstance(get_controller("bsp"), BSP)
        assert isinstance(get_controller("ssp", staleness=3), SSP)
        assert get_controller("ssp", staleness=3).staleness == 3
        assert isinstance(get_controller("asp"), ASP)

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_controller("eventual")
