"""Unit tests for repro.ps.server and repro.ps.engine."""

import numpy as np
import pytest

from repro.cluster import cluster1, cluster2
from repro.ps import BSP, SSP, ParameterServer, PsEngine, ps_step_seconds
from repro.ps.engine import worker_label


class TestParameterServer:
    def test_pull_initial_zero(self):
        ps = ParameterServer(model_size=10, num_servers=2)
        assert np.array_equal(ps.pull(), np.zeros(10))

    def test_pull_returns_copy(self):
        ps = ParameterServer(model_size=4, num_servers=1)
        ps.pull()[0] = 99.0
        assert ps.pull()[0] == 0.0

    def test_push_sum_accumulates(self):
        ps = ParameterServer(model_size=4, num_servers=2)
        ps.push_sum(np.ones(4))
        ps.push_sum(2 * np.ones(4))
        assert np.allclose(ps.pull(), 3 * np.ones(4))

    def test_average_cycle(self):
        ps = ParameterServer(model_size=4, num_servers=2)
        ps.push_for_average(np.ones(4))
        ps.push_for_average(3 * np.ones(4))
        assert ps.pending_count == 2
        new = ps.apply_average()
        assert np.allclose(new, 2 * np.ones(4))
        assert ps.pending_count == 0

    def test_apply_average_without_pushes(self):
        ps = ParameterServer(model_size=4, num_servers=1)
        with pytest.raises(RuntimeError):
            ps.apply_average()

    def test_initial_model(self):
        init = np.arange(6.0)
        ps = ParameterServer(model_size=6, num_servers=3, initial=init)
        assert np.array_equal(ps.pull(), init)

    def test_shape_validation(self):
        ps = ParameterServer(model_size=4, num_servers=2)
        with pytest.raises(ValueError):
            ps.push_sum(np.ones(5))
        with pytest.raises(ValueError):
            ParameterServer(model_size=2, num_servers=4)


class TestPsStepSeconds:
    def test_more_servers_faster(self):
        cluster = cluster1()
        slow = ps_step_seconds(cluster, 1_000_000, num_servers=1,
                               num_workers=8)
        fast = ps_step_seconds(cluster, 1_000_000, num_servers=8,
                               num_workers=8)
        assert fast < slow

    def test_single_server_matches_driver_fanin(self):
        """One shard = the driver bottleneck, in both directions."""
        cluster = cluster1()
        m, k = 500_000, 8
        got = ps_step_seconds(cluster, m, num_servers=1, num_workers=k)
        expected = 2 * cluster.network.fan_in_seconds(k, m)
        assert got == pytest.approx(expected)


class TestPsEngine:
    def test_bsp_steps_monotone_clock(self):
        engine = PsEngine(cluster1(executors=4), controller=BSP())
        t1 = engine.run_step([1.0] * 4, model_size=1000)
        t2 = engine.run_step([1.0] * 4, model_size=1000)
        assert t2 > t1
        assert engine.now == pytest.approx(t2)

    def test_comm_seconds_positive(self):
        engine = PsEngine(cluster1(executors=4))
        assert engine.comm_seconds(100_000) > 0

    def test_emits_compute_and_send_spans(self):
        engine = PsEngine(cluster1(executors=2))
        engine.run_step([1.0, 2.0], model_size=1000)
        for r in range(2):
            kinds = {s.kind for s in engine.trace.spans_for(worker_label(r))}
            assert "compute" in kinds
            assert "send" in kinds

    def test_bsp_waits_on_straggler(self):
        engine = PsEngine(cluster1(executors=2), controller=BSP())
        engine.run_step([0.1, 5.0], model_size=100)
        engine.run_step([0.1, 5.0], model_size=100)
        # The fast worker must have waited before its second step.
        assert engine.trace.wait_seconds(worker_label(0)) > 0

    def test_ssp_hides_straggler_latency(self):
        """Identical workloads; SSP's makespan <= BSP's."""
        def total_time(controller):
            engine = PsEngine(cluster2(machines=8, seed=3),
                              controller=controller)
            last = 0.0
            for _ in range(10):
                last = engine.run_step([0.5] * 8, model_size=10_000)
            return last

        assert total_time(SSP(staleness=3)) <= total_time(BSP())

    def test_overhead_added(self):
        base = PsEngine(cluster1(executors=2))
        t_plain = base.run_step([1.0, 1.0], model_size=100)
        with_oh = PsEngine(cluster1(executors=2))
        t_oh = with_oh.run_step([1.0, 1.0], model_size=100,
                                overhead_seconds=[2.0, 2.0])
        assert t_oh == pytest.approx(t_plain + 2.0)

    def test_validation(self):
        engine = PsEngine(cluster1(executors=2))
        with pytest.raises(ValueError):
            engine.run_step([1.0], model_size=100)
        with pytest.raises(ValueError):
            engine.run_step([1.0, -1.0], model_size=100)
        with pytest.raises(ValueError):
            PsEngine(cluster1(executors=2), num_servers=0)
