"""Behavioural tests for the parameter-server trainers."""

import numpy as np

from repro.core import TrainerConfig
from repro.glm import Objective
from repro.ps import (ASP, BSP, SSP, AngelTrainer, PetuumStarTrainer,
                      PetuumTrainer)


CFG = TrainerConfig(max_steps=10, learning_rate=0.05, batch_fraction=0.2,
                    seed=1)


class TestPetuum:
    def test_runs_and_records(self, tiny_dataset, small_cluster):
        result = PetuumTrainer(Objective("hinge"), small_cluster, CFG).fit(
            tiny_dataset)
        assert len(result.history) == 11

    def test_summation_diverges_with_aggressive_rate(self, small_dataset,
                                                     small_cluster):
        """Model summation's known failure mode (Section IV-B1 remark):
        with k workers each pushing a full delta, the effective step is
        k * eta, which blows up where averaging stays stable."""
        obj = Objective("squared")
        cfg = TrainerConfig(max_steps=40, learning_rate=0.1,
                            batch_fraction=0.5, local_chunk_size=1000,
                            seed=1)
        summation = PetuumTrainer(obj, small_cluster, cfg).fit(small_dataset)
        averaging = PetuumStarTrainer(obj, small_cluster, cfg).fit(
            small_dataset)
        assert summation.diverged or (
            summation.final_objective > 10 * averaging.final_objective)
        assert not averaging.diverged

    def test_regularized_petuum_one_update_per_step(self, tiny_dataset,
                                                    small_cluster):
        """With L2 != 0 Petuum does plain GD per batch => objective falls
        slowly compared to the unregularized parallel-SGD mode."""
        reg = PetuumStarTrainer(Objective("hinge", "l2", 0.1),
                                small_cluster, CFG).fit(tiny_dataset)
        assert reg.history.final_objective < reg.history.objectives()[0]

    def test_uses_ssp_by_default(self, small_cluster):
        trainer = PetuumTrainer(Objective("hinge"), small_cluster, CFG)
        assert isinstance(trainer._controller, SSP)

    def test_custom_controller(self, tiny_dataset, small_cluster):
        trainer = PetuumStarTrainer(Objective("hinge"), small_cluster, CFG,
                                    controller=ASP())
        result = trainer.fit(tiny_dataset)
        assert result.history.total_seconds > 0


class TestPetuumStar:
    def test_averaging_beats_summation_stability(self, small_dataset,
                                                 small_cluster):
        obj = Objective("hinge")
        star = PetuumStarTrainer(obj, small_cluster, CFG).fit(small_dataset)
        assert not star.diverged
        assert star.final_objective < star.history.objectives()[0]

    def test_system_names(self, small_cluster):
        assert PetuumTrainer(Objective("hinge"), small_cluster).system == (
            "Petuum")
        assert PetuumStarTrainer(Objective("hinge"),
                                 small_cluster).system == "Petuum*"


class TestAngel:
    def test_objective_decreases(self, tiny_dataset, small_cluster):
        result = AngelTrainer(Objective("hinge"), small_cluster, CFG).fit(
            tiny_dataset)
        objs = result.history.objectives()
        assert objs[-1] < objs[0]

    def test_uses_bsp_by_default(self, small_cluster):
        trainer = AngelTrainer(Objective("hinge"), small_cluster, CFG)
        assert isinstance(trainer._controller, BSP)

    def test_small_batches_cost_more_time(self, tiny_dataset, small_cluster):
        """Section V-B2: per-batch buffer allocation penalizes small
        batches — same epochs, more simulated seconds."""
        obj = Objective("hinge")
        small_batches = AngelTrainer(
            obj, small_cluster,
            CFG.with_overrides(batch_fraction=0.01)).fit(tiny_dataset)
        large_batches = AngelTrainer(
            obj, small_cluster,
            CFG.with_overrides(batch_fraction=0.5)).fit(tiny_dataset)
        assert (small_batches.history.total_seconds
                > large_batches.history.total_seconds)

    def test_per_epoch_communication(self, tiny_dataset, small_cluster):
        """One send span per worker per step (epoch), however many batches
        the epoch contains."""
        result = AngelTrainer(Objective("hinge"), small_cluster,
                              CFG.with_overrides(max_steps=3,
                                                 batch_fraction=0.05),
                              ).fit(tiny_dataset)
        sends = [s for s in result.trace.spans_for("worker-1")
                 if s.kind == "send"]
        assert len(sends) == 3


class TestCrossSystem:
    def test_all_ps_systems_deterministic(self, tiny_dataset, small_cluster):
        for cls in (PetuumTrainer, PetuumStarTrainer, AngelTrainer):
            a = cls(Objective("hinge"), small_cluster, CFG).fit(tiny_dataset)
            b = cls(Objective("hinge"), small_cluster, CFG).fit(tiny_dataset)
            assert np.array_equal(a.model.weights, b.model.weights), cls
