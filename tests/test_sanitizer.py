"""Barrier sanitizer tests: freeze semantics, digest checks, and the
bit-exactness guarantee (``--sanitize`` must not perturb numerics).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from data.make_golden import SYSTEMS, golden_workload
from repro.analysis.sanitizer import (BarrierSanitizer,
                                      ReplicaDivergenceError, check_replicas,
                                      freeze_array, model_digest)
from repro.core import MLlibStarTrainer
from repro.glm import Objective
from repro.ps.server import ParameterServer

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_convergence.json"


# ----------------------------------------------------------------------
# freeze_array / model_digest / check_replicas units
# ----------------------------------------------------------------------
def test_freeze_array_makes_writes_raise():
    frozen = freeze_array(np.zeros(4))
    with pytest.raises(ValueError, match="read-only"):
        frozen += 1.0


def test_freeze_array_is_idempotent_and_value_preserving():
    w = np.arange(5.0)
    frozen = freeze_array(w)
    again = freeze_array(frozen)
    assert again is frozen
    np.testing.assert_array_equal(frozen, np.arange(5.0))


def test_freeze_array_copies_views_instead_of_locking_the_base():
    base = np.arange(10.0)
    view = base[2:6]
    frozen = freeze_array(view)
    assert not frozen.flags.writeable
    base[3] = 99.0  # the base must stay writable
    np.testing.assert_array_equal(frozen, [2.0, 3.0, 4.0, 5.0])


def test_model_digest_covers_dtype_shape_and_bytes():
    a = np.arange(6.0)
    assert model_digest(a) == model_digest(a.copy())
    assert model_digest(a) != model_digest(a.reshape(2, 3))
    assert model_digest(a) != model_digest(a.astype(np.float32))
    b = a.copy()
    b[0] = 1e-300  # tiny perturbation invisible to == tolerance checks
    assert model_digest(a) != model_digest(b)


def test_check_replicas_accepts_identical_and_names_divergent():
    replicas = [np.arange(4.0) for _ in range(3)]
    digest = check_replicas(replicas)
    assert digest == model_digest(replicas[0])
    replicas[2] = replicas[2] + 1e-12
    with pytest.raises(ReplicaDivergenceError, match=r"replicas \[2\]"):
        check_replicas(replicas, context="test barrier")


# ----------------------------------------------------------------------
# BarrierSanitizer wrapper
# ----------------------------------------------------------------------
def test_disabled_sanitizer_is_a_no_op():
    sanitizer = BarrierSanitizer(enabled=False)
    w = np.zeros(3)
    assert sanitizer.freeze(w) is w
    assert w.flags.writeable
    sanitizer.record_barrier(1, w)
    assert sanitizer.barrier_digests == []
    diverging = [np.zeros(3), np.ones(3)]
    sanitizer.check_replicas(diverging)  # silently skipped when disabled


def test_enabled_sanitizer_freezes_and_records():
    sanitizer = BarrierSanitizer(enabled=True)
    w = sanitizer.freeze(np.arange(3.0))
    assert not w.flags.writeable
    sanitizer.record_barrier(0, w)
    sanitizer.record_barrier(1, w)
    assert [step for step, _ in sanitizer.barrier_digests] == [0, 1]
    assert sanitizer.barrier_digests[0][1] == model_digest(w)


def test_parameter_server_sanitize_pull_is_read_only():
    server = ParameterServer(model_size=8, num_servers=2, sanitize=True)
    pulled = server.pull()
    with pytest.raises(ValueError, match="read-only"):
        pulled[0] = 1.0
    # The server's own model stays writable: combines still work.
    server.push_sum(np.ones(8))
    np.testing.assert_array_equal(server.pull(), np.ones(8))


# ----------------------------------------------------------------------
# catching a rogue trainer at the faulting line
# ----------------------------------------------------------------------
class RogueTrainer(MLlibStarTrainer):
    """Deliberately updates the broadcast model in place — the bug class
    the sanitizer exists to catch (workers silently coupling through a
    shared ndarray instead of copying)."""

    def _run_step(self, step, w, data):
        w *= 0.5  # in-place mutation of the broadcast weights
        return w


def test_rogue_in_place_mutation_raises_under_sanitize():
    dataset, cluster, config = golden_workload()
    objective = Objective("hinge", "l2", 0.1)
    trainer = RogueTrainer(objective, cluster,
                           config.with_overrides(sanitize=True))
    with pytest.raises(ValueError, match="read-only"):
        trainer.fit(dataset)


def test_rogue_mutation_goes_unnoticed_without_sanitize():
    # The contrast case: without --sanitize the same bug trains
    # "successfully" — exactly why the mode exists.
    dataset, cluster, config = golden_workload()
    objective = Objective("hinge", "l2", 0.1)
    result = RogueTrainer(objective, cluster, config).fit(dataset)
    assert result.history.total_steps == config.max_steps


# ----------------------------------------------------------------------
# bit-exactness: --sanitize must not change a single bit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", sorted(SYSTEMS))
def test_sanitize_mode_reproduces_golden_bit_exactly(name):
    golden = json.loads(GOLDEN_PATH.read_text())[name]
    trainer_cls, loss = SYSTEMS[name]
    dataset, cluster, config = golden_workload()
    objective = Objective(loss, "l2", 0.1)
    trainer = trainer_cls(objective, cluster,
                          config.with_overrides(sanitize=True))
    result = trainer.fit(dataset)
    # Exact equality, not approx: freezing and digesting are observers.
    assert result.final_objective == golden["final_objective"]
    assert result.history.total_seconds == golden["total_seconds"]
    assert result.history.total_steps == golden["total_steps"]
    # Every superstep barrier logged a digest (init + each step).
    assert len(trainer.sanitizer.barrier_digests) == golden["total_steps"] + 1
