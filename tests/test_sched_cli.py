"""End-to-end tests for ``repro sched ...`` (queue lifecycle + runs)."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture()
def queue(tmp_path):
    return tmp_path / "jobs.json"


def submit(queue, name, *extra):
    return main(["sched", "submit", "--queue", str(queue), "--name", name,
                 "--executors", "2", "--steps", "2", "--rows", "60",
                 "--features", "16", *extra])


class TestQueueLifecycle:
    def test_submit_creates_queue_file(self, queue, capsys):
        assert submit(queue, "exp1") == 0
        assert "queued exp1" in capsys.readouterr().out
        payload = json.loads(queue.read_text())
        assert [j["name"] for j in payload["jobs"]] == ["exp1"]

    def test_submit_rejects_duplicate_name(self, queue, capsys):
        submit(queue, "exp1")
        assert submit(queue, "exp1") == 1
        assert "already queued" in capsys.readouterr().err

    def test_list_shows_queued_jobs(self, queue, capsys):
        submit(queue, "exp1")
        submit(queue, "exp2", "--min-executors", "1",
               "--max-executors", "4")
        capsys.readouterr()
        assert main(["sched", "list", "--queue", str(queue)]) == 0
        out = capsys.readouterr().out
        assert "exp1" in out and "exp2" in out
        assert "1-4" in out          # elastic width range rendered

    def test_list_empty_queue(self, queue, capsys):
        assert main(["sched", "list", "--queue", str(queue)]) == 0
        assert "queue is empty" in capsys.readouterr().out

    def test_cancel_removes_job(self, queue, capsys):
        submit(queue, "exp1")
        submit(queue, "exp2")
        capsys.readouterr()
        assert main(["sched", "cancel", "--queue", str(queue),
                     "--name", "exp1"]) == 0
        assert "cancelled exp1" in capsys.readouterr().out
        payload = json.loads(queue.read_text())
        assert [j["name"] for j in payload["jobs"]] == ["exp2"]

    def test_cancel_unknown_job_fails(self, queue, capsys):
        submit(queue, "exp1")
        capsys.readouterr()
        assert main(["sched", "cancel", "--queue", str(queue),
                     "--name", "ghost"]) == 1
        assert "no queued job" in capsys.readouterr().err

    def test_status_before_any_run_lists_queue(self, queue, capsys):
        submit(queue, "exp1")
        capsys.readouterr()
        assert main(["sched", "status", "--queue", str(queue)]) == 0
        out = capsys.readouterr().out
        assert "no run recorded" in out
        assert "exp1" in out


class TestRun:
    def test_run_empty_queue_fails(self, queue, capsys):
        assert main(["sched", "run", "--queue", str(queue)]) == 1
        assert "queue is empty" in capsys.readouterr().err

    def test_run_plays_queue_and_records_status(self, queue, capsys):
        submit(queue, "exp1")
        submit(queue, "exp2", "--arrival", "0.001")
        capsys.readouterr()
        assert main(["sched", "run", "--queue", str(queue),
                     "--policy", "fair"]) == 0
        out = capsys.readouterr().out
        assert "schedule (fair" in out
        assert "schedule log:" in out
        status = queue.with_suffix(".json.status")
        payload = json.loads(status.read_text())
        assert payload["report"]["finished"] == 2
        assert len(payload["log_digest"]) == 64
        # status subcommand now reads the recorded run
        assert main(["sched", "status", "--queue", str(queue)]) == 0
        out = capsys.readouterr().out
        assert "last run (fair" in out
        assert "exp1" in out

    def test_status_filters_by_name(self, queue, capsys):
        submit(queue, "exp1")
        submit(queue, "exp2")
        main(["sched", "run", "--queue", str(queue)])
        capsys.readouterr()
        assert main(["sched", "status", "--queue", str(queue),
                     "--name", "exp2"]) == 0
        out = capsys.readouterr().out
        assert "exp2" in out and "exp1" not in out
        assert main(["sched", "status", "--queue", str(queue),
                     "--name", "ghost"]) == 1

    def test_run_writes_out_json(self, queue, tmp_path, capsys):
        submit(queue, "exp1")
        out_path = tmp_path / "result.json"
        capsys.readouterr()
        assert main(["sched", "run", "--queue", str(queue),
                     "--out", str(out_path)]) == 0
        payload = json.loads(out_path.read_text())
        assert payload["config"]["policy"] == "fifo"
        assert payload["jobs"][0]["name"] == "exp1"

    def test_run_gantt_and_log_flags(self, queue, capsys):
        submit(queue, "exp1")
        capsys.readouterr()
        assert main(["sched", "run", "--queue", str(queue),
                     "--gantt", "--show-log"]) == 0
        out = capsys.readouterr().out
        assert "admit job=exp1" in out        # --show-log
        assert "exp1" in out.split("schedule log:")[1]


class TestRunTrace:
    def test_run_trace_smoke(self, capsys):
        assert main(["sched", "run-trace", "--rate", "40",
                     "--duration", "0.1", "--trace-seed", "3",
                     "--policy", "fair", "--elastic",
                     "--elastic-jobs"]) == 0
        out = capsys.readouterr().out
        assert "generated" in out
        assert "schedule (fair, elastic" in out

    def test_run_trace_empty_window_fails(self, capsys):
        assert main(["sched", "run-trace", "--rate", "0.001",
                     "--duration", "0.001"]) == 1
        assert "no arrivals" in capsys.readouterr().err

    def test_run_trace_digest_is_reproducible(self, tmp_path, capsys):
        digests = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            assert main(["sched", "run-trace", "--rate", "40",
                         "--duration", "0.1", "--trace-seed", "3",
                         "--out", str(out)]) == 0
            digests.append(json.loads(out.read_text())["log_digest"])
        assert digests[0] == digests[1]

    def test_preempt_requires_fair(self, capsys):
        assert main(["sched", "run-trace", "--rate", "40",
                     "--duration", "0.1", "--policy", "fifo",
                     "--preempt"]) == 1
        assert "fair" in capsys.readouterr().err
