"""Scheduling policies, job specs, and scheduler config validation."""

from __future__ import annotations

import pytest

from repro.sched import (JobSpec, JobView, SchedConfig,
                         dispatch_admission_width, dispatch_fair_shares,
                         dispatch_order, dispatch_preemption_victim)


def view(name, priority=1, arrival=0.0, seq=0, width=0, lo=1, hi=4):
    return JobView(name=name, priority=priority, arrival=arrival, seq=seq,
                   width=width, min_width=lo, max_width=hi)


# ----------------------------------------------------------------------
# admission order
# ----------------------------------------------------------------------
def test_fifo_orders_by_arrival_then_seq():
    jobs = [view("late", arrival=2.0, seq=0),
            view("early", arrival=1.0, seq=1),
            view("tied", arrival=1.0, seq=2)]
    order = dispatch_order("fifo", jobs)
    assert [jobs[i].name for i in order] == ["early", "tied", "late"]


def test_fair_orders_by_priority_then_arrival():
    jobs = [view("light-early", priority=1, arrival=0.0, seq=0),
            view("heavy-late", priority=3, arrival=5.0, seq=1),
            view("heavy-early", priority=3, arrival=1.0, seq=2)]
    order = dispatch_order("fair", jobs)
    assert [jobs[i].name for i in order] == [
        "heavy-early", "heavy-late", "light-early"]


def test_unknown_policy_rejected():
    with pytest.raises(ValueError, match="unknown policy"):
        dispatch_order("lottery", [])


# ----------------------------------------------------------------------
# fair shares
# ----------------------------------------------------------------------
def test_fair_shares_proportional_to_priority():
    jobs = [view("a", priority=3, seq=0, lo=1, hi=8),
            view("b", priority=1, seq=1, lo=1, hi=8)]
    shares = dispatch_fair_shares(8, jobs)
    assert shares == {"a": 6, "b": 2}


def test_fair_shares_respect_width_bounds():
    jobs = [view("a", priority=9, seq=0, lo=1, hi=3),
            view("b", priority=1, seq=1, lo=2, hi=8)]
    shares = dispatch_fair_shares(8, jobs)
    assert shares["a"] == 3          # capped at max_width
    assert shares["b"] == 5          # slack redistributed
    assert sum(shares.values()) <= 8


def test_fair_shares_sum_never_exceeds_total():
    jobs = [view(f"j{i}", priority=i + 1, seq=i, lo=1, hi=8)
            for i in range(5)]
    shares = dispatch_fair_shares(8, jobs)
    assert sum(shares.values()) <= 8
    assert all(1 <= s <= 8 for s in shares.values())


def test_fair_shares_empty_and_validation():
    assert dispatch_fair_shares(4, []) == {}
    with pytest.raises(ValueError):
        dispatch_fair_shares(0, [view("a")])


def test_fair_shares_deterministic_ties():
    jobs = [view("a", seq=0, lo=1, hi=8), view("b", seq=1, lo=1, hi=8),
            view("c", seq=2, lo=1, hi=8)]
    first = dispatch_fair_shares(8, jobs)
    assert first == dispatch_fair_shares(8, list(jobs))
    # 8 / 3: the two extra executors go to the earliest submissions
    assert first == {"a": 3, "b": 3, "c": 2}


# ----------------------------------------------------------------------
# admission width
# ----------------------------------------------------------------------
def test_admission_clamps_into_range_and_free_block():
    job = view("a", lo=2, hi=6)
    assert dispatch_admission_width(job, 4, 8) == 4
    assert dispatch_admission_width(job, 9, 8) == 6   # capped at max
    assert dispatch_admission_width(job, 1, 8) == 2   # raised to min
    assert dispatch_admission_width(job, 4, 3) == 3   # capped by free
    assert dispatch_admission_width(job, 4, 1) == 0   # below min: refuse


def test_admission_rigid_is_all_or_nothing():
    job = view("a", lo=4, hi=4)
    assert dispatch_admission_width(job, 4, 4) == 4
    assert dispatch_admission_width(job, 4, 3) == 0


# ----------------------------------------------------------------------
# preemption victim
# ----------------------------------------------------------------------
def test_preemption_picks_lightest_then_youngest():
    candidate = view("vip", priority=5)
    running = [view("old-light", priority=1, arrival=0.0, seq=0),
               view("young-light", priority=1, arrival=3.0, seq=1),
               view("heavy", priority=4, arrival=0.0, seq=2)]
    idx = dispatch_preemption_victim(candidate, running)
    assert running[idx].name == "young-light"


def test_preemption_never_hits_equal_priority():
    candidate = view("vip", priority=2)
    running = [view("peer", priority=2), view("heavier", priority=3)]
    assert dispatch_preemption_victim(candidate, running) is None


# ----------------------------------------------------------------------
# JobSpec validation and JSON round-trip
# ----------------------------------------------------------------------
def test_jobspec_defaults_are_rigid():
    spec = JobSpec(name="j", executors=4)
    assert spec.width_range == (4, 4)
    assert not spec.elastic


def test_jobspec_validates_width_range():
    with pytest.raises(ValueError, match="min_executors"):
        JobSpec(name="j", executors=4, min_executors=5)
    with pytest.raises(ValueError, match="min_executors"):
        JobSpec(name="j", executors=4, max_executors=3)


def test_jobspec_requires_features_to_cover_widest_gang():
    with pytest.raises(ValueError, match="n_features"):
        JobSpec(name="j", executors=4, max_executors=8, n_features=6)


def test_jobspec_basic_validation():
    with pytest.raises(ValueError):
        JobSpec(name="")
    with pytest.raises(ValueError):
        JobSpec(name="j", arrival=-1.0)
    with pytest.raises(ValueError):
        JobSpec(name="j", priority=0)
    with pytest.raises(ValueError):
        JobSpec(name="j", steps=0)


def test_jobspec_json_round_trip():
    spec = JobSpec(name="j", executors=3, min_executors=2, max_executors=5,
                   priority=2, steps=7, loss="logistic", l2=0.0)
    assert JobSpec.from_json(spec.to_json()) == spec


def test_jobspec_json_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown JobSpec fields"):
        JobSpec.from_json({"name": "j", "gpus": 4})


def test_jobspec_rejects_unknown_system_lazily():
    spec = JobSpec(name="j", system="DryadLINQ")
    with pytest.raises(ValueError, match="unknown system"):
        from repro.cluster import cluster1
        spec.make_trainer(cluster1(executors=4))


# ----------------------------------------------------------------------
# SchedConfig validation
# ----------------------------------------------------------------------
def test_sched_config_validation():
    with pytest.raises(ValueError, match="policy"):
        SchedConfig(policy="srpt")
    with pytest.raises(ValueError):
        SchedConfig(total_executors=0)
    with pytest.raises(ValueError):
        SchedConfig(resize_every=0)
    with pytest.raises(ValueError, match="fair"):
        SchedConfig(policy="fifo", preempt=True)


def test_sched_config_overrides():
    cfg = SchedConfig().with_overrides(policy="fair", elastic=True)
    assert cfg.policy == "fair" and cfg.elastic
    assert cfg.total_executors == 8
