"""ExecutorPool: deterministic first-fit gang placement and resizing."""

from __future__ import annotations

import pytest

from repro.sched import ExecutorPool


def test_pool_validates_size():
    with pytest.raises(ValueError):
        ExecutorPool(0)


def test_allocate_is_first_fit_lowest_index():
    pool = ExecutorPool(8)
    assert pool.allocate("a", 3) == (0, 3)
    assert pool.allocate("b", 2) == (3, 5)
    assert pool.allocate("c", 3) == (5, 8)
    assert pool.free_count == 0


def test_allocate_skips_too_small_holes():
    pool = ExecutorPool(8)
    pool.allocate("a", 2)        # [0,2)
    pool.allocate("b", 3)        # [2,5)
    pool.release("a")            # hole [0,2)
    assert pool.allocate("c", 3) == (5, 8)  # hole too small, goes high
    assert pool.block_of("c") == (5, 8)


def test_gang_is_all_or_nothing():
    pool = ExecutorPool(8)
    pool.allocate("a", 5)
    with pytest.raises(ValueError, match="no contiguous block"):
        pool.allocate("b", 4)
    # 3 free slots exist, but never a partial grant
    assert pool.free_count == 3
    assert pool.block_of("b") is None


def test_double_allocate_rejected():
    pool = ExecutorPool(8)
    pool.allocate("a", 2)
    with pytest.raises(ValueError, match="already holds"):
        pool.allocate("a", 2)


def test_release_returns_slots_and_rejects_unknown():
    pool = ExecutorPool(4)
    pool.allocate("a", 4)
    pool.release("a")
    assert pool.free_count == 4
    with pytest.raises(ValueError, match="holds no executors"):
        pool.release("a")


def test_free_blocks_and_largest():
    pool = ExecutorPool(10)
    pool.allocate("a", 2)        # [0,2)
    pool.allocate("b", 3)        # [2,5)
    pool.allocate("c", 2)        # [5,7)
    pool.release("b")
    assert pool.free_blocks() == [(2, 5), (7, 10)]
    assert pool.largest_free_block() == 3
    pool.release("a")
    assert pool.free_blocks() == [(0, 5), (7, 10)]
    assert pool.largest_free_block() == 5


def test_resize_shrink_trims_top_in_place():
    pool = ExecutorPool(8)
    pool.allocate("a", 6)
    assert pool.resize("a", 3) == (0, 3)
    assert pool.block_of("a") == (0, 3)
    assert pool.free_blocks() == [(3, 8)]


def test_resize_grow_in_place_when_room_above():
    pool = ExecutorPool(8)
    pool.allocate("a", 3)
    assert pool.resize("a", 6) == (0, 6)


def test_resize_grow_relocates_when_blocked_above():
    pool = ExecutorPool(10)
    pool.allocate("a", 2)        # [0,2)
    pool.allocate("b", 2)        # [2,4)
    # a cannot extend past b, but [4,10) fits a 5-wide gang
    assert pool.resize("a", 5) == (4, 9)
    assert pool.block_of("a") == (4, 9)
    assert pool.owner_of(0) is None and pool.owner_of(1) is None


def test_resize_relocation_counts_own_slots():
    pool = ExecutorPool(6)
    pool.allocate("a", 3)        # [0,3)
    pool.allocate("b", 2)        # [3,5)
    pool.release("b")
    # grow to 5: in place [0,5) works because slots above are free
    assert pool.resize("a", 5) == (0, 5)


def test_resize_failure_restores_original_block():
    pool = ExecutorPool(8)
    pool.allocate("a", 3)        # [0,3)
    pool.allocate("b", 2)        # [3,5)
    pool.allocate("c", 3)        # [5,8)
    with pytest.raises(ValueError, match="no contiguous block"):
        pool.resize("a", 6)
    assert pool.block_of("a") == (0, 3)  # untouched after the failure


def test_resize_rejects_zero_width():
    pool = ExecutorPool(4)
    pool.allocate("a", 2)
    with pytest.raises(ValueError, match="release"):
        pool.resize("a", 0)


def test_max_resize_width_counts_own_plus_free_run():
    pool = ExecutorPool(10)
    pool.allocate("a", 3)        # [0,3)
    pool.allocate("b", 2)        # [3,5)
    assert pool.max_resize_width("a") == 5  # own [0,3) + free [5,10) -> 5
    pool.release("b")
    assert pool.max_resize_width("a") == 10
