"""Property-based tests for the scheduler (hypothesis).

Three families of invariants:

* **Policy purity** — ``dispatch_order`` is a permutation and
  ``dispatch_fair_shares`` always respects the pool size and per-job
  width bounds, for arbitrary job mixes.
* **Work conservation / no starvation** — every submitted job finishes
  with its full step budget under any policy mix; nobody queues forever
  while a large-enough block sits free.
* **Deterministic replay** — the same config and job set produce a
  byte-identical schedule log (and digest) every time.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (SCHED_POLICIES, ClusterScheduler, JobSpec, JobView,
                         SchedConfig, dispatch_fair_shares, dispatch_order)

POOL = 6


@st.composite
def job_views(draw, max_jobs=8):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    views = []
    for seq in range(n):
        lo = draw(st.integers(min_value=1, max_value=3))
        hi = draw(st.integers(min_value=lo, max_value=POOL))
        views.append(JobView(
            name=f"j{seq}",
            priority=draw(st.integers(min_value=1, max_value=5)),
            arrival=draw(st.floats(min_value=0.0, max_value=1.0,
                                   allow_nan=False)),
            seq=seq,
            width=0,
            min_width=lo,
            max_width=hi,
        ))
    return views


@st.composite
def job_specs(draw, max_jobs=4):
    n = draw(st.integers(min_value=1, max_value=max_jobs))
    specs = []
    for i in range(n):
        executors = draw(st.integers(min_value=1, max_value=4))
        if draw(st.booleans()):
            lo = draw(st.integers(min_value=1, max_value=executors))
            hi = draw(st.integers(min_value=executors, max_value=POOL))
        else:
            lo = hi = executors
        specs.append(JobSpec(
            name=f"job-{i}",
            arrival=round(draw(st.floats(min_value=0.0, max_value=0.01,
                                         allow_nan=False)), 6),
            priority=draw(st.integers(min_value=1, max_value=3)),
            executors=executors,
            min_executors=lo,
            max_executors=hi,
            steps=draw(st.integers(min_value=1, max_value=3)),
            n_rows=48,
            n_features=16,
            data_seed=100 + i,
        ))
    return specs


@st.composite
def sched_configs(draw):
    policy = draw(st.sampled_from(SCHED_POLICIES))
    return SchedConfig(
        policy=policy,
        elastic=draw(st.booleans()),
        preempt=(policy == "fair" and draw(st.booleans())),
        total_executors=POOL,
    )


def run_schedule(config, specs):
    scheduler = ClusterScheduler(config)
    for spec in specs:
        scheduler.submit(spec)
    return scheduler.run()


# ----------------------------------------------------------------------
# policy purity
# ----------------------------------------------------------------------
class TestPolicyInvariants:
    @given(views=job_views(), policy=st.sampled_from(SCHED_POLICIES))
    @settings(max_examples=100, deadline=None)
    def test_dispatch_order_is_a_permutation(self, views, policy):
        order = dispatch_order(policy, views)
        assert sorted(order) == list(range(len(views)))

    @given(views=job_views())
    @settings(max_examples=100, deadline=None)
    def test_fair_shares_respect_pool_and_bounds(self, views):
        shares = dispatch_fair_shares(POOL, views)
        assert set(shares) == {v.name for v in views}
        floors = sum(v.min_width for v in views)
        # Shares never exceed the pool unless the width floors alone
        # already overcommit it (admission clamps against free space).
        assert sum(shares.values()) <= max(POOL, floors)
        for v in views:
            assert shares[v.name] <= v.max_width
            assert shares[v.name] >= min(v.min_width, POOL)

    @given(views=job_views())
    @settings(max_examples=100, deadline=None)
    def test_fair_shares_are_input_order_independent(self, views):
        shares = dispatch_fair_shares(POOL, views)
        assert shares == dispatch_fair_shares(POOL, list(reversed(views)))


# ----------------------------------------------------------------------
# work conservation / no starvation
# ----------------------------------------------------------------------
class TestWorkConservation:
    @given(config=sched_configs(), specs=job_specs())
    @settings(max_examples=10, deadline=None)
    def test_every_job_finishes_its_full_budget(self, config, specs):
        result = run_schedule(config, specs)
        assert len(result.jobs) == len(specs)
        by_name = {j.name: j for j in result.jobs}
        for spec in specs:
            job = by_name[spec.name]
            assert job.state == "finished"
            assert job.steps_done == spec.steps
            assert job.first_start >= spec.arrival
            assert job.queue_wait >= 0.0
            assert result.results[spec.name].history.steps()[-1] == spec.steps
        assert result.makespan >= max(j.finish_time for j in result.jobs) - 1e-12

    @given(specs=job_specs())
    @settings(max_examples=10, deadline=None)
    def test_executor_time_is_accounted(self, specs):
        result = run_schedule(SchedConfig(policy="fair",
                                          total_executors=POOL), specs)
        busy = sum(j.executor_seconds for j in result.jobs)
        assert 0.0 < busy <= POOL * result.makespan + 1e-9


# ----------------------------------------------------------------------
# deterministic replay
# ----------------------------------------------------------------------
class TestReplay:
    @given(config=sched_configs(), specs=job_specs())
    @settings(max_examples=10, deadline=None)
    def test_schedule_log_is_byte_identical(self, config, specs):
        first = run_schedule(config, specs)
        second = run_schedule(config, specs)
        assert first.log.text() == second.log.text()
        assert first.log.digest() == second.log.digest()
        assert first.makespan == second.makespan
        for name in first.results:
            a = first.results[name].history
            b = second.results[name].history
            assert a.seconds() == b.seconds()
            assert a.objectives() == b.objectives()
