"""ClusterScheduler: determinism, bit-identity, elasticity, preemption."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import cluster1
from repro.metrics import sched_report
from repro.sched import (ClusterScheduler, JobSpec, SchedConfig,
                         poisson_job_trace)


def run_schedule(config, specs):
    scheduler = ClusterScheduler(config)
    for spec in specs:
        scheduler.submit(spec)
    return scheduler.run()


# ----------------------------------------------------------------------
# bit-identity: fixed-width scheduled run == standalone fit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("system", ["MLlib*", "Petuum"])
def test_fixed_width_job_bit_identical_to_standalone(system):
    spec = JobSpec(name="solo", system=system, executors=4, steps=4)
    result = run_schedule(SchedConfig(total_executors=8), [spec])
    standalone = spec.make_trainer(
        cluster1(executors=4, seed=0)).fit(spec.dataset())
    got = result.results["solo"]
    assert np.array_equal(got.model.weights, standalone.model.weights)
    assert got.history.objectives() == standalone.history.objectives()
    assert got.history.seconds() == standalone.history.seconds()


def test_fixed_width_bit_identity_survives_multiplexing():
    """A job interleaved with other tenants still matches standalone."""
    target = JobSpec(name="target", executors=3, steps=5, data_seed=5)
    others = [JobSpec(name="noise-1", executors=4, steps=3, arrival=0.001,
                      data_seed=6),
              JobSpec(name="noise-2", executors=2, steps=4, arrival=0.002,
                      data_seed=7)]
    result = run_schedule(SchedConfig(policy="fair", total_executors=8),
                          [target] + others)
    standalone = target.make_trainer(
        cluster1(executors=3, seed=0)).fit(target.dataset())
    got = result.results["target"]
    assert np.array_equal(got.model.weights, standalone.model.weights)
    assert got.history.objectives() == standalone.history.objectives()


# ----------------------------------------------------------------------
# scheduling semantics
# ----------------------------------------------------------------------
def test_jobs_never_start_before_arrival():
    specs = [JobSpec(name="a", executors=2, steps=2, arrival=0.0),
             JobSpec(name="b", executors=2, steps=2, arrival=0.5)]
    result = run_schedule(SchedConfig(total_executors=8), specs)
    by_name = {j.name: j for j in result.jobs}
    assert by_name["b"].first_start >= 0.5
    assert all(j.jct > 0 for j in result.jobs)


def test_gang_blocks_queue_until_space():
    specs = [JobSpec(name="wide", executors=6, steps=3),
             JobSpec(name="blocked", executors=6, steps=2, arrival=1e-4)]
    result = run_schedule(SchedConfig(total_executors=8), specs)
    by_name = {j.name: j for j in result.jobs}
    wide = by_name["wide"]
    assert by_name["blocked"].first_start >= wide.finish_time
    assert by_name["blocked"].queue_wait > 0


def test_fifo_backfills_around_stuck_gang():
    specs = [JobSpec(name="runs", executors=6, steps=4),
             JobSpec(name="stuck", executors=8, steps=2, arrival=1e-4),
             JobSpec(name="fits", executors=2, steps=2, arrival=2e-4)]
    result = run_schedule(SchedConfig(total_executors=8), specs)
    by_name = {j.name: j for j in result.jobs}
    # 'fits' uses the 2 spare slots while 'stuck' waits for all 8
    assert by_name["fits"].first_start < by_name["runs"].finish_time
    assert by_name["stuck"].first_start >= by_name["runs"].finish_time


def test_cancelled_job_never_runs():
    scheduler = ClusterScheduler(SchedConfig(total_executors=8))
    scheduler.submit(JobSpec(name="keep", executors=2, steps=2))
    scheduler.submit(JobSpec(name="drop", executors=2, steps=2))
    scheduler.cancel("drop")
    result = scheduler.run()
    by_name = {j.name: j for j in result.jobs}
    assert by_name["drop"].state == "cancelled"
    assert by_name["drop"].steps_done == 0
    assert by_name["keep"].state == "finished"
    assert "drop" not in result.results


def test_submit_validates_names_and_pool_fit():
    scheduler = ClusterScheduler(SchedConfig(total_executors=4))
    scheduler.submit(JobSpec(name="a", executors=2, steps=2))
    with pytest.raises(ValueError, match="duplicate"):
        scheduler.submit(JobSpec(name="a", executors=2, steps=2))
    with pytest.raises(ValueError, match="pool has only"):
        scheduler.submit(JobSpec(name="huge", executors=6, steps=2))


def test_run_is_one_shot():
    scheduler = ClusterScheduler(SchedConfig(total_executors=4))
    scheduler.submit(JobSpec(name="a", executors=2, steps=2))
    scheduler.run()
    with pytest.raises(RuntimeError, match="one-shot"):
        scheduler.run()
    with pytest.raises(RuntimeError):
        scheduler.submit(JobSpec(name="b", executors=2, steps=2))


# ----------------------------------------------------------------------
# elasticity
# ----------------------------------------------------------------------
def test_elastic_job_grows_when_pool_drains():
    # 'brief' holds 6 slots; 'stretchy' is admitted into the 2-slot gap
    # and grows at a barrier once 'brief' finishes.
    specs = [JobSpec(name="brief", executors=6, steps=2),
             JobSpec(name="stretchy", executors=2, min_executors=2,
                     max_executors=8, steps=24, arrival=1e-4)]
    config = SchedConfig(policy="fair", elastic=True, total_executors=8)
    result = run_schedule(config, specs)
    stretchy = next(j for j in result.jobs if j.name == "stretchy")
    assert stretchy.resizes >= 1
    grow = [line for line in result.log.lines()
            if "resize job=stretchy" in line]
    assert any("old=2 new=8" in line for line in grow)


def test_elastic_job_shrinks_to_admit_competitor():
    # 'stretchy' starts alone at full width, then gives slots back when
    # 'brief' arrives needing a 6-wide gang.
    specs = [JobSpec(name="stretchy", executors=2, min_executors=2,
                     max_executors=8, steps=6),
             JobSpec(name="brief", executors=6, steps=2, arrival=1e-4)]
    config = SchedConfig(policy="fair", elastic=True, total_executors=8)
    result = run_schedule(config, specs)
    lines = result.log.lines()
    assert any("admit job=stretchy width=8" in line for line in lines)
    assert any("resize job=stretchy old=8" in line for line in lines)
    brief = next(j for j in result.jobs if j.name == "brief")
    assert brief.state == "finished"


def test_elastic_disabled_keeps_widths_fixed():
    specs = [JobSpec(name="stretchy", executors=2, min_executors=2,
                     max_executors=8, steps=4)]
    result = run_schedule(SchedConfig(policy="fair", elastic=False,
                                      total_executors=8), specs)
    assert all(j.resizes == 0 for j in result.jobs)


def test_resize_every_spaces_out_width_changes():
    specs = [JobSpec(name="stretchy", executors=2, min_executors=2,
                     max_executors=8, steps=6),
             JobSpec(name="brief", executors=6, steps=1, arrival=1e-4)]
    eager = run_schedule(SchedConfig(policy="fair", elastic=True,
                                     total_executors=8), specs)
    lazy = run_schedule(SchedConfig(policy="fair", elastic=True,
                                    resize_every=4, total_executors=8),
                        specs)
    n_eager = sum(j.resizes for j in eager.jobs)
    n_lazy = sum(j.resizes for j in lazy.jobs)
    assert n_lazy <= n_eager


def test_elastic_resume_continues_history_not_restarts():
    """Width changes must extend one monotone history, not begin anew."""
    specs = [JobSpec(name="stretchy", executors=2, min_executors=2,
                     max_executors=8, steps=6),
             JobSpec(name="brief", executors=6, steps=2, arrival=1e-4)]
    result = run_schedule(SchedConfig(policy="fair", elastic=True,
                                      total_executors=8), specs)
    stretchy = next(j for j in result.jobs if j.name == "stretchy")
    assert stretchy.resizes >= 1
    history = result.results["stretchy"].history
    steps = history.steps()
    assert steps == sorted(steps)
    assert steps[0] == 0 and steps[-1] == 6
    seconds = history.seconds()
    assert seconds == sorted(seconds)  # clock offsets carried across


# ----------------------------------------------------------------------
# preemption
# ----------------------------------------------------------------------
def preemption_scenario():
    low = JobSpec(name="low", priority=1, executors=8, steps=12,
                  n_rows=400)
    high = JobSpec(name="high", priority=5, executors=8, steps=2,
                   arrival=0.004)
    return [low, high]


def test_preemption_checkpoints_and_resumes():
    config = SchedConfig(policy="fair", preempt=True, total_executors=8)
    result = run_schedule(config, preemption_scenario())
    by_name = {j.name: j for j in result.jobs}
    assert by_name["low"].preemptions == 1
    assert by_name["low"].state == "finished"
    assert by_name["high"].state == "finished"
    # the high-priority job ran while 'low' was suspended
    lines = result.log.text()
    assert "preempt_request job=low" in lines
    assert "preempt job=low" in lines
    assert "resume job=low" in lines
    # full step budget still completed after the resume
    assert by_name["low"].steps_done == 12
    assert result.results["low"].history.steps()[-1] == 12


def test_preemption_shortens_high_priority_wait():
    specs = preemption_scenario()
    with_p = run_schedule(SchedConfig(policy="fair", preempt=True,
                                      total_executors=8), specs)
    without = run_schedule(SchedConfig(policy="fair", preempt=False,
                                       total_executors=8), specs)
    jct_with = next(j for j in with_p.jobs if j.name == "high").jct
    jct_without = next(j for j in without.jobs if j.name == "high").jct
    assert jct_with < jct_without


def test_preempted_resume_pays_restore_overhead():
    config = SchedConfig(policy="fair", preempt=True, total_executors=8)
    result = run_schedule(config, preemption_scenario())
    resume = [line for line in result.log.lines()
              if "resume job=low" in line]
    assert len(resume) == 1
    assert "overhead=0.0 " not in resume[0] + " "


# ----------------------------------------------------------------------
# determinism: byte-identical replay
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config", [
    SchedConfig(policy="fifo", total_executors=8),
    SchedConfig(policy="fair", total_executors=8),
    SchedConfig(policy="fair", elastic=True, preempt=True,
                total_executors=8),
])
def test_replay_is_byte_identical(config):
    specs = poisson_job_trace(rate=60.0, duration=0.2, seed=11,
                              elastic=True)
    first = run_schedule(config, specs)
    second = run_schedule(config, specs)
    assert first.log.text() == second.log.text()
    assert first.log.digest() == second.log.digest()
    assert first.makespan == second.makespan


def test_different_seed_changes_trace_not_determinism():
    a = poisson_job_trace(rate=60.0, duration=0.2, seed=1)
    b = poisson_job_trace(rate=60.0, duration=0.2, seed=2)
    assert a != b
    assert a == poisson_job_trace(rate=60.0, duration=0.2, seed=1)


# ----------------------------------------------------------------------
# accounting / report
# ----------------------------------------------------------------------
def test_sched_report_accounts_the_run():
    config = SchedConfig(policy="fair", elastic=True, total_executors=8)
    specs = poisson_job_trace(rate=60.0, duration=0.2, seed=11,
                              elastic=True)
    result = run_schedule(config, specs)
    report = sched_report(result)
    assert report.jobs == len(specs)
    assert report.finished == len(specs)
    assert report.makespan == result.makespan
    assert report.total_steps == sum(j.steps_done for j in result.jobs)
    assert report.goodput == pytest.approx(
        report.total_steps / report.makespan)
    assert 0.0 < report.utilization <= 1.0
    assert report.jct_p95 >= report.jct_p50 > 0
    rows = report.row()
    assert len(rows) == len(report.HEADERS)
    assert "fair" in report.describe()


def test_trace_has_one_gantt_row_per_started_job():
    specs = poisson_job_trace(rate=60.0, duration=0.2, seed=11)
    result = run_schedule(SchedConfig(total_executors=8), specs)
    assert set(result.trace.nodes()) == {s.name for s in specs}
