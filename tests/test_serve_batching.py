"""MicroBatcher semantics and bit-exact request stacking."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.serve import MicroBatcher, PredictRequest, stack_requests


def req(request_id, arrival, row=(1.0, 0.0, 2.0)):
    features = sp.csr_matrix(np.array([row], dtype=np.float64))
    return PredictRequest(request_id=request_id, features=features,
                          arrival=arrival)


class TestPredictRequest:
    def test_single_row_enforced(self):
        two_rows = sp.csr_matrix(np.ones((2, 3)))
        with pytest.raises(ValueError, match="exactly one feature row"):
            PredictRequest(request_id=0, features=two_rows, arrival=0.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            req(0, -1.0)

    def test_nnz(self):
        assert req(0, 0.0, row=(1.0, 0.0, 2.0)).nnz == 2


class TestStackRequests:
    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="empty batch"):
            stack_requests([])

    def test_preserves_row_order_and_dot_products(self):
        rng = np.random.default_rng(2)
        rows = [sp.random(1, 40, density=0.2, format="csr",
                          random_state=np.random.RandomState(i))
                for i in range(7)]
        requests = [PredictRequest(request_id=i, features=r.tocsr(),
                                   arrival=float(i))
                    for i, r in enumerate(rows)]
        stacked = stack_requests(requests)
        assert stacked.shape == (7, 40)
        w = rng.normal(size=40)
        batched = stacked @ w
        for i, r in enumerate(requests):
            # bit-identical, not merely close: same nonzero order, same
            # accumulation order as a standalone row @ w
            assert batched[i] == (r.features @ w)[0]

    def test_single_request_passthrough(self):
        r = req(0, 0.0)
        assert stack_requests([r]) is r.features


class TestMicroBatcher:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(0, 1.0, 1)
        with pytest.raises(ValueError, match="max_delay"):
            MicroBatcher(1, -1.0, 1)
        with pytest.raises(ValueError, match="queue_limit"):
            MicroBatcher(1, 1.0, 0)

    def test_offer_enforces_arrival_order(self):
        batcher = MicroBatcher(4, 1.0, 10)
        assert batcher.offer(req(0, 5.0))
        with pytest.raises(ValueError, match="arrival order"):
            batcher.offer(req(1, 4.0))

    def test_offer_refuses_past_queue_limit(self):
        batcher = MicroBatcher(max_batch=8, max_delay=1.0, queue_limit=2)
        assert batcher.offer(req(0, 0.0))
        assert batcher.offer(req(1, 0.0))
        assert not batcher.offer(req(2, 0.0))
        assert batcher.depth == 2

    def test_flush_on_deadline(self):
        batcher = MicroBatcher(max_batch=10, max_delay=0.05, queue_limit=99)
        assert batcher.next_flush_time() is None
        batcher.offer(req(0, 1.0))
        batcher.offer(req(1, 1.02))
        # the *oldest* pending request sets the deadline
        assert batcher.next_flush_time() == pytest.approx(1.05)

    def test_flush_on_size(self):
        batcher = MicroBatcher(max_batch=3, max_delay=0.05, queue_limit=99)
        batcher.offer(req(0, 1.0))
        batcher.offer(req(1, 1.01))
        batcher.offer(req(2, 1.02))
        # a full batch is ready the instant its last member arrived,
        # not at the deadline
        assert batcher.next_flush_time() == 1.02

    def test_take_pops_at_most_max_batch(self):
        batcher = MicroBatcher(max_batch=3, max_delay=0.05, queue_limit=99)
        for i in range(5):
            batcher.offer(req(i, float(i)))
        first = batcher.take()
        assert [r.request_id for r in first] == [0, 1, 2]
        assert batcher.depth == 2
        assert [r.request_id for r in batcher.take()] == [3, 4]
        with pytest.raises(ValueError, match="no pending"):
            batcher.take()

    def test_deadline_advances_after_take(self):
        batcher = MicroBatcher(max_batch=2, max_delay=0.1, queue_limit=99)
        for i in range(3):
            batcher.offer(req(i, float(i)))
        batcher.take()
        # request 2 is now the oldest pending
        assert batcher.next_flush_time() == pytest.approx(2.1)
