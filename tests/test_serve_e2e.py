"""End-to-end: train -> registry -> load -> serve -> predict.

Runs the pinned golden workload (tests/data/make_golden.py) through the
MLlib* trainer, pushes the model through the registry, and serves the
training set back through the PredictionService — every hop must be
bit-exact, and the training run itself must still match
``golden_convergence.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core import MLlibStarTrainer
from repro.glm import GLMModel, Objective
from repro.serve import (ModelRegistry, PredictionService, ServeConfig,
                         dataset_requests)

from data.make_golden import golden_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_convergence.json"
REL_TOL = 1e-9


@pytest.fixture(scope="module")
def golden_run():
    dataset, cluster, config = golden_workload()
    result = MLlibStarTrainer(Objective("hinge", "l2", 0.1), cluster,
                              config).fit(dataset)
    return dataset, result


def test_training_still_matches_golden(golden_run):
    _, result = golden_run
    pinned = json.loads(GOLDEN_PATH.read_text())["MLlib*"]
    assert result.final_objective == pytest.approx(
        pinned["final_objective"], rel=REL_TOL)
    assert result.history.total_steps == pinned["total_steps"]


def test_registry_round_trip_preserves_training_numerics(
        golden_run, tmp_path):
    dataset, result = golden_run
    registry = ModelRegistry(tmp_path / "registry")
    version = registry.save_model(
        result.model, "golden-svm",
        provenance={"system": "MLlib*", "dataset": dataset.name})
    registry.promote("golden-svm", version)
    loaded = registry.load_model("golden-svm")
    assert np.array_equal(loaded.weights, result.model.weights)
    # the reloaded model reproduces the in-memory objective bit-for-bit
    assert (loaded.objective_value(dataset.X, dataset.y)
            == result.model.objective_value(dataset.X, dataset.y))
    assert (loaded.accuracy(dataset.X, dataset.y)
            == result.model.accuracy(dataset.X, dataset.y))


def test_served_predictions_match_in_memory_model(golden_run, tmp_path):
    dataset, result = golden_run
    path = result.model.save(tmp_path / "golden.npz")
    loaded = GLMModel.load(path)
    config = ServeConfig(max_batch=32, queue_limit=dataset.n_rows)
    service = PredictionService(loaded, config)
    served = service.process(dataset_requests(dataset))
    assert served.completed == dataset.n_rows
    assert len(served.shed) == 0
    by_id = served.by_id()
    margins = np.array([by_id[i].margin for i in range(dataset.n_rows)])
    labels = np.array([by_id[i].label for i in range(dataset.n_rows)])
    # micro-batched serving is bit-identical to direct scoring
    assert np.array_equal(margins,
                          result.model.decision_function(dataset.X))
    served_accuracy = float(np.mean(labels == dataset.y))
    assert served_accuracy == result.model.accuracy(dataset.X, dataset.y)


def test_shadowing_promoted_against_candidate(golden_run, tmp_path):
    dataset, result = golden_run
    registry = ModelRegistry(tmp_path / "registry")
    v1 = registry.save_model(result.model, "golden-svm")
    candidate = GLMModel(weights=-result.model.weights,
                         objective=result.model.objective)
    v2 = registry.save_model(candidate, "golden-svm")
    service = PredictionService(
        registry.load_model("golden-svm", v1),
        ServeConfig(max_batch=32, queue_limit=dataset.n_rows),
        shadow=registry.load_model("golden-svm", v2),
        primary_version=v1, shadow_version=v2)
    served = service.process(dataset_requests(dataset))
    shadow = served.shadow
    assert shadow.rows == dataset.n_rows
    # negated weights flip the label wherever the margin is nonzero
    margins = result.model.decision_function(dataset.X)
    assert shadow.disagreements == int(np.sum(margins != 0))
    assert shadow.primary_version == v1
    assert shadow.shadow_version == v2
