"""Model artifacts and the versioned registry (repro.serve.registry)."""

import json
import zipfile

import numpy as np
import pytest

from repro.data import SyntheticSpec, generate
from repro.glm import (ArtifactError, GLMModel, Objective,
                       read_artifact_meta)
from repro.serve import ModelRegistry, RegistryError


@pytest.fixture()
def model():
    rng = np.random.default_rng(5)
    return GLMModel(weights=rng.normal(size=24),
                    objective=Objective("hinge", "l2", 0.1))


@pytest.fixture()
def dataset():
    return generate(SyntheticSpec(n_rows=120, n_features=24,
                                  nnz_per_row=6.0, seed=9), "reg-ds")


# ----------------------------------------------------------------------
# GLMModel.save / load
# ----------------------------------------------------------------------
class TestArtifactRoundTrip:
    def test_weights_and_objective_round_trip(self, tmp_path, model):
        path = model.save(tmp_path / "m.npz",
                          provenance={"dataset": "reg-ds", "seed": 5})
        loaded = GLMModel.load(path)
        assert np.array_equal(loaded.weights, model.weights)
        assert loaded.weights.dtype == model.weights.dtype
        assert loaded.objective.describe() == model.objective.describe()

    def test_round_trip_preserves_predictions_bit_exactly(
            self, tmp_path, model, dataset):
        loaded = GLMModel.load(model.save(tmp_path / "m"))
        assert np.array_equal(loaded.decision_function(dataset.X),
                              model.decision_function(dataset.X))
        assert (loaded.objective_value(dataset.X, dataset.y)
                == model.objective_value(dataset.X, dataset.y))

    def test_npz_suffix_appended(self, tmp_path, model):
        path = model.save(tmp_path / "bare")
        assert path.name == "bare.npz"
        assert GLMModel.load(tmp_path / "bare").dim == model.dim

    def test_provenance_stored(self, tmp_path, model):
        path = model.save(tmp_path / "m", provenance={"system": "MLlib*"})
        meta = read_artifact_meta(path)
        assert meta["provenance"] == {"system": "MLlib*"}
        assert meta["objective"] == {"loss": "hinge", "regularizer": "l2",
                                     "strength": 0.1}

    def test_unregularized_objective_round_trips(self, tmp_path):
        model = GLMModel(weights=np.ones(4), objective=Objective("logistic"))
        loaded = GLMModel.load(model.save(tmp_path / "m"))
        assert loaded.objective.describe() == "logistic+none(0)"


class TestArtifactVerification:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="no model artifact"):
            GLMModel.load(tmp_path / "nope.npz")

    def test_garbage_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip file")
        with pytest.raises(ArtifactError):
            GLMModel.load(path)

    def test_non_artifact_npz(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ArtifactError, match="no 'meta' entry"):
            GLMModel.load(path)

    def test_tampered_weights_fail_digest(self, tmp_path, model):
        path = model.save(tmp_path / "m.npz")
        with np.load(path, allow_pickle=False) as data:
            weights, meta = np.array(data["weights"]), data["meta"]
            weights[0] += 1.0e-9  # a single flipped low-order bit region
            np.savez(path, weights=weights, meta=meta)
        with pytest.raises(ArtifactError, match="digest mismatch"):
            GLMModel.load(path)

    def test_tampered_metadata_fails_digest(self, tmp_path, model):
        path = model.save(tmp_path / "m.npz")
        with np.load(path, allow_pickle=False) as data:
            weights = np.array(data["weights"])
            meta = json.loads(str(data["meta"][()]))
        meta["provenance"]["dataset"] = "forged"
        np.savez(path, weights=weights, meta=np.array(json.dumps(meta)))
        with pytest.raises(ArtifactError, match="digest mismatch"):
            GLMModel.load(path)

    def test_dimension_mismatch(self, tmp_path, model):
        path = model.save(tmp_path / "m.npz")
        with np.load(path, allow_pickle=False) as data:
            weights, meta = np.array(data["weights"]), data["meta"]
        np.savez(path, weights=weights[:-1], meta=meta)
        with pytest.raises(ArtifactError, match="dimension mismatch"):
            GLMModel.load(path)

    def test_truncated_zip(self, tmp_path, model):
        path = model.save(tmp_path / "m.npz")
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) // 2])
        with pytest.raises(ArtifactError):
            GLMModel.load(path)

    def test_artifact_is_a_plain_zip(self, tmp_path, model):
        # interop guarantee: the artifact opens with stdlib zipfile
        path = model.save(tmp_path / "m.npz")
        assert zipfile.is_zipfile(path)


# ----------------------------------------------------------------------
# ModelRegistry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_versions_are_monotonic(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        assert registry.save_model(model, "svm") == "v0001"
        assert registry.save_model(model, "svm") == "v0002"
        assert registry.save_model(model, "other") == "v0001"
        assert registry.model_names() == ["other", "svm"]

    def test_load_specific_version(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        registry.save_model(model, "svm")
        other = GLMModel(weights=model.weights * 2.0,
                         objective=model.objective)
        registry.save_model(other, "svm")
        v1 = registry.load_model("svm", "v0001")
        v2 = registry.load_model("svm", "v0002")
        assert np.array_equal(v1.weights, model.weights)
        assert np.array_equal(v2.weights, other.weights)

    def test_default_is_latest_until_promoted(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        registry.save_model(model, "svm")
        newer = GLMModel(weights=model.weights + 1.0,
                         objective=model.objective)
        registry.save_model(newer, "svm")
        assert np.array_equal(registry.load_model("svm").weights,
                              newer.weights)
        registry.promote("svm", "v0001")
        assert registry.promoted_version("svm") == "v0001"
        assert np.array_equal(registry.load_model("svm").weights,
                              model.weights)

    def test_list_versions_metadata(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        registry.save_model(model, "svm", provenance={"seed": 5})
        registry.save_model(model, "svm")
        registry.promote("svm", "v0002")
        infos = registry.list_versions("svm")
        assert [i.version for i in infos] == ["v0001", "v0002"]
        assert [i.promoted for i in infos] == [False, True]
        assert infos[0].dim == model.dim
        assert infos[0].provenance == {"seed": 5}
        assert infos[0].objective["loss"] == "hinge"
        assert len(infos[0].digest) == 64

    def test_unknown_name_and_version(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        with pytest.raises(RegistryError, match="no model named"):
            registry.load_model("ghost")
        registry.save_model(model, "svm")
        with pytest.raises(RegistryError, match="no version"):
            registry.load_model("svm", "v0099")
        with pytest.raises(RegistryError, match="no version"):
            registry.promote("svm", "v0099")

    def test_invalid_names_rejected(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        for bad in ("../escape", "", ".hidden", "a/b"):
            with pytest.raises(RegistryError, match="invalid model name"):
                registry.save_model(model, bad)

    def test_promote_refuses_corrupted_artifact(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        registry.save_model(model, "svm")
        registry.promote("svm", "v0001")
        version = registry.save_model(model, "svm")
        path = registry.resolve("svm", version)
        with np.load(path, allow_pickle=False) as data:
            weights, meta = np.array(data["weights"]), data["meta"]
        weights[3] = 42.0
        np.savez(path, weights=weights, meta=meta)
        with pytest.raises(ArtifactError, match="digest mismatch"):
            registry.promote("svm", version)
        # the old promotion is untouched
        assert registry.promoted_version("svm") == "v0001"

    def test_malformed_promoted_pointer(self, tmp_path, model):
        registry = ModelRegistry(tmp_path / "reg")
        registry.save_model(model, "svm")
        (tmp_path / "reg" / "svm" / "PROMOTED").write_text("banana\n")
        with pytest.raises(RegistryError, match="malformed promotion"):
            registry.load_model("svm")


# ----------------------------------------------------------------------
# the committed CI smoke fixture
# ----------------------------------------------------------------------
class TestCommittedTinyArtifact:
    """Guards tests/data/tiny_model.npz, which CI's smoke job scores.

    Regenerate with ``PYTHONPATH=src python tests/data/make_tiny_artifact.py``
    if the artifact format changes.
    """

    def test_loads_and_predicts(self):
        from pathlib import Path

        from repro.data import read_libsvm

        data_dir = Path(__file__).parent / "data"
        model = GLMModel.load(data_dir / "tiny_model.npz")
        dataset = read_libsvm(data_dir / "tiny.libsvm")
        assert model.dim == dataset.n_features
        meta = read_artifact_meta(data_dir / "tiny_model.npz")
        assert meta["provenance"]["system"] == "MLlib*"
        assert model.accuracy(dataset.X, dataset.y) > 0.6
