"""PredictionService event loop: dispatch, shedding, shadowing, metrics."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.data import SyntheticSpec, generate
from repro.glm import GLMModel, Objective
from repro.metrics import LatencyHistogram, ServingReport, serving_report
from repro.serve import (PredictRequest, PredictionService, ServeConfig,
                         ServingCostModel, dataset_requests, rate_sweep)

#: Near-constant-time cost model: every batch takes ~0.01s to serve
#: (the per-row/per-nnz terms are negligible but must be positive).
FLAT = ServingCostModel(dispatch_overhead_seconds=0.01, sec_per_row=1e-12,
                        sec_per_nnz=1e-12)
T = 0.01


def unit_request(request_id, arrival, axis, dim=3):
    row = np.zeros((1, dim))
    row[0, axis] = 1.0
    return PredictRequest(request_id=request_id,
                          features=sp.csr_matrix(row), arrival=arrival)


@pytest.fixture()
def model():
    # margins for the three unit rows: +1, -1, +2
    return GLMModel(weights=np.array([1.0, -1.0, 2.0]),
                    objective=Objective("hinge", "l2", 0.1))


# ----------------------------------------------------------------------
# dispatch semantics
# ----------------------------------------------------------------------
class TestDispatch:
    def test_flush_on_deadline(self, model):
        config = ServeConfig(max_batch=10, max_delay=0.05, queue_limit=99,
                             workers=1)
        service = PredictionService(model, config, cost=FLAT)
        requests = [unit_request(i, 0.01 * i, axis=0) for i in range(3)]
        result = service.process(requests)
        # nothing fills the batch, so the oldest request's deadline
        # (t=0.05) dispatches all three together
        assert result.batch_sizes == (3,)
        assert all(p.dispatched == pytest.approx(0.05)
                   for p in result.predictions)
        assert all(p.completed == pytest.approx(0.05 + T)
                   for p in result.predictions)

    def test_flush_on_size(self, model):
        config = ServeConfig(max_batch=2, max_delay=0.05, queue_limit=99,
                             workers=1)
        service = PredictionService(model, config, cost=FLAT)
        requests = [unit_request(0, 0.0, 0), unit_request(1, 0.001, 0),
                    unit_request(2, 0.002, 0)]
        result = service.process(requests)
        assert result.batch_sizes == (2, 1)
        by_id = result.by_id()
        # the full batch leaves the instant its second member arrives —
        # long before the 50ms deadline
        assert by_id[0].dispatched == pytest.approx(0.001)
        assert by_id[1].dispatched == pytest.approx(0.001)
        # the straggler waits for its own deadline
        assert by_id[2].dispatched == pytest.approx(0.052)

    def test_workers_run_batches_in_parallel(self, model):
        config = ServeConfig(max_batch=1, max_delay=0.0, queue_limit=99,
                             workers=2)
        service = PredictionService(model, config, cost=FLAT)
        result = service.process([unit_request(i, 0.0, 0)
                                  for i in range(3)])
        dispatched = sorted(p.dispatched for p in result.predictions)
        # two workers take a batch each at t=0; the third waits for the
        # first free worker
        assert dispatched == pytest.approx([0.0, 0.0, T])

    def test_rejects_unsorted_arrivals(self, model):
        service = PredictionService(model, cost=FLAT)
        with pytest.raises(ValueError, match="sorted by arrival"):
            service.process([unit_request(0, 1.0, 0),
                             unit_request(1, 0.5, 0)])

    def test_latency_breakdown(self, model):
        config = ServeConfig(max_batch=10, max_delay=0.05, queue_limit=99,
                             workers=1)
        service = PredictionService(model, config, cost=FLAT)
        result = service.process([unit_request(0, 0.0, 0)])
        (p,) = result.predictions
        assert p.queue_seconds == pytest.approx(0.05)
        assert p.latency == pytest.approx(0.05 + T)

    def test_empty_stream(self, model):
        result = PredictionService(model, cost=FLAT).process([])
        assert result.offered == 0
        assert result.completed == 0
        assert result.qps == 0.0
        assert result.summary()["latency"] == {"count": 0}


# ----------------------------------------------------------------------
# overload: bounded queue sheds, latency stays bounded
# ----------------------------------------------------------------------
class TestOverload:
    def test_burst_sheds_exactly_past_queue_limit(self, model):
        config = ServeConfig(max_batch=4, max_delay=0.001, queue_limit=8,
                             workers=1)
        service = PredictionService(model, config, cost=FLAT)
        burst = [unit_request(i, 0.0, 0) for i in range(40)]
        result = service.process(burst)
        # one batch dispatches the instant it fills at t=0; the queue
        # then refills to its cap (8) and everything else is shed
        assert result.offered == 40
        assert result.completed == 12
        assert len(result.shed) == 28
        assert result.shed_rate == pytest.approx(28 / 40)
        assert result.max_queue_depth == 8
        assert result.batch_sizes == (4, 4, 4)
        # FIFO: the first 12 requests are served, the rest shed
        assert sorted(p.request_id for p in result.predictions) == \
            list(range(12))
        assert sorted(result.shed) == list(range(12, 40))

    def test_tail_latency_bounded_by_queue_drain(self, model):
        config = ServeConfig(max_batch=4, max_delay=0.001, queue_limit=8,
                             workers=1)
        service = PredictionService(model, config, cost=FLAT)
        result = service.process([unit_request(i, 0.0, 0)
                                  for i in range(40)])
        # worst case: wait for the queue ahead (2 batches) plus your own
        bound = (8 / 4 + 1) * T + config.max_delay
        assert result.latency.percentile(99) <= bound


# ----------------------------------------------------------------------
# predictions are real (and bit-exact vs unbatched scoring)
# ----------------------------------------------------------------------
class TestPredictionValues:
    def test_margins_and_labels(self, model):
        service = PredictionService(model, ServeConfig(queue_limit=16),
                                    cost=FLAT)
        result = service.process([unit_request(0, 0.0, 0),
                                  unit_request(1, 0.0, 1),
                                  unit_request(2, 0.0, 2)])
        by_id = result.by_id()
        assert by_id[0].margin == 1.0 and by_id[0].label == 1.0
        assert by_id[1].margin == -1.0 and by_id[1].label == -1.0
        assert by_id[2].margin == 2.0 and by_id[2].label == 1.0

    def test_batched_equals_direct_scoring_bit_exactly(self):
        dataset = generate(SyntheticSpec(n_rows=200, n_features=32,
                                         nnz_per_row=6.0, seed=4), "svc")
        rng = np.random.default_rng(7)
        model = GLMModel(weights=rng.normal(size=32),
                         objective=Objective("logistic", "l2", 0.01))
        config = ServeConfig(max_batch=16, queue_limit=dataset.n_rows)
        service = PredictionService(model, config)
        result = service.process(dataset_requests(dataset))
        assert result.completed == dataset.n_rows
        served = np.array([result.by_id()[i].margin
                           for i in range(dataset.n_rows)])
        assert np.array_equal(served, model.decision_function(dataset.X))


# ----------------------------------------------------------------------
# shadow / canary mode
# ----------------------------------------------------------------------
class TestShadow:
    def test_disagreements_counted_per_row(self, model):
        negated = GLMModel(weights=-model.weights,
                           objective=model.objective)
        service = PredictionService(
            model, ServeConfig(max_batch=3, queue_limit=16), cost=FLAT,
            shadow=negated, primary_version="v0001",
            shadow_version="v0002")
        result = service.process([unit_request(i, 0.0, axis=i)
                                  for i in range(3)])
        shadow = result.shadow
        assert shadow is not None
        # all three margins are nonzero, so negated weights flip every
        # label
        assert shadow.rows == 3
        assert shadow.disagreements == 3
        assert shadow.disagreement_rate == 1.0
        assert shadow.primary_version == "v0001"
        assert shadow.shadow_version == "v0002"

    def test_identical_shadow_never_disagrees(self, model):
        service = PredictionService(model, ServeConfig(queue_limit=16),
                                    cost=FLAT, shadow=model)
        result = service.process([unit_request(i, 0.0, axis=i % 3)
                                  for i in range(9)])
        assert result.shadow.rows == 9
        assert result.shadow.disagreements == 0
        assert result.shadow.disagreement_rate == 0.0

    def test_slower_shadow_does_not_delay_primary(self, model):
        slow = ServingCostModel(dispatch_overhead_seconds=0.05,
                                sec_per_row=1e-12, sec_per_nnz=1e-12)
        service = PredictionService(model,
                                    ServeConfig(max_batch=3,
                                                queue_limit=16),
                                    cost=FLAT, shadow=model,
                                    shadow_cost=slow)
        result = service.process([unit_request(i, 0.0, axis=i)
                                  for i in range(3)])
        # primary latency unchanged by the tee; shadow's own latency is
        # tracked separately and is slower
        assert all(p.completed == pytest.approx(T)
                   for p in result.predictions)
        assert result.shadow.p99 == pytest.approx(0.05)
        assert result.shadow.primary_latency.max == pytest.approx(T)

    def test_shadow_dim_mismatch_rejected(self, model):
        wide = GLMModel(weights=np.zeros(7), objective=model.objective)
        with pytest.raises(ValueError, match="shared feature space"):
            PredictionService(model, shadow=wide)

    def test_no_shadow_means_no_report(self, model):
        result = PredictionService(model, cost=FLAT).process(
            [unit_request(0, 0.0, 0)])
        assert result.shadow is None
        assert "shadow" not in result.summary()


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_rate_sweep_is_bit_identical(self):
        dataset = generate(SyntheticSpec(n_rows=150, n_features=24,
                                         nnz_per_row=5.0, seed=3), "det")
        model = GLMModel(
            weights=np.random.default_rng(1).normal(size=24),
            objective=Objective("hinge", "l2", 0.1))
        config = ServeConfig(max_batch=8, max_delay=1.0e-3,
                             queue_limit=32, workers=2, seed=13)
        first = rate_sweep(model, dataset, config, [5000, 20000], 0.02)
        second = rate_sweep(model, dataset, config, [5000, 20000], 0.02)
        assert first == second
        assert first[0]["offered"] > 0


# ----------------------------------------------------------------------
# serving metrics
# ----------------------------------------------------------------------
class TestServingMetrics:
    def test_serving_report_from_result(self, model):
        config = ServeConfig(max_batch=4, max_delay=0.001, queue_limit=8,
                             workers=1)
        service = PredictionService(model, config, cost=FLAT,
                                    shadow=model)
        result = service.process([unit_request(i, 0.0, 0)
                                  for i in range(40)])
        report = serving_report(result)
        assert isinstance(report, ServingReport)
        assert report.offered == 40
        assert report.completed == 12
        assert report.shed == 28
        assert report.max_queue_depth == 8
        assert report.mean_batch == pytest.approx(4.0)
        assert report.p99 == result.latency.percentile(99)
        assert report.disagreements == 0
        assert report.shadow_rows == 12
        assert len(report.row()) == len(ServingReport.HEADERS)
        assert "shed" in report.describe()

    def test_histogram_nearest_rank_percentiles(self):
        hist = LatencyHistogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            hist.record(v)
        assert hist.percentile(50) == 2.0
        assert hist.percentile(99) == 4.0
        assert hist.percentile(0) == 1.0
        assert hist.count == 4
        assert hist.mean == pytest.approx(2.5)
        summary = hist.summary()
        assert summary["p50"] == 2.0 and summary["max"] == 4.0

    def test_histogram_validation_and_merge(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError, match="negative"):
            hist.record(-1.0)
        with pytest.raises(ValueError, match="no samples"):
            hist.percentile(50)
        assert hist.summary() == {"count": 0}
        other = LatencyHistogram()
        other.record(0.5)
        hist.merge(other)
        assert hist.count == 1 and hist.max == 0.5

    def test_histogram_bucket_rows(self):
        hist = LatencyHistogram()
        for v in (1.0e-7, 1.0e-3, 1.0e-3, 5.0):
            hist.record(v)
        rows = hist.bucket_rows()
        assert sum(r[1] for r in rows) == 4
        assert rows[0][0].startswith("<= 1e-06")  # underflow bucket
