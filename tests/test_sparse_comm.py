"""Sparse-aware communication: wire format, pricing, and bugfix sweep.

Four families of guarantees:

* **Wire format** — :class:`SparsePayload` round-trips exactly, the
  dense<->sparse switch follows the SparCML break-even rule
  (``nnz < m / 2``), and ``mode='off'`` passes the dense array through
  untouched (same object, not a copy).
* **Bit-identity** — the sparse collectives materialize payloads before
  combining, so their outputs equal the dense collectives *bit for bit*
  under every mode, density and worker count (hypothesis sweeps).
* **Pricing** — nnz-aware wire sizes flow through the engines: sparse
  wires shorten the priced phases, ``wire=None`` keeps every duration
  bit-identical to the dense engine, and on a 1%-density workload the
  priced communication seconds per superstep drop >= 5x under
  ``sparse_comm='auto'`` while the numerics match the golden run exactly.
* **Bugfix regressions** — silently-ignored AllReduce weights, non-finite
  weights, latency-histogram edge misplacement, and libsvm label
  truncation each have a pinned test.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import build_parser
from repro.cluster import (GIGABIT, ClusterSpec, NetworkModel, cluster1,
                           homogeneous_nodes)
from repro.collectives import (CommStats, SparsePayload, all_gather,
                               combine_weight_scale, encode, materialize,
                               payload_wire_values, reduce_scatter,
                               sparse_all_gather, sparse_reduce_scatter,
                               tree_fan_in_wire, wire_values)
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate, write_libsvm
from repro.engine import BspEngine, TreeAggregateModel
from repro.glm import Objective
from repro.metrics import LatencyHistogram, comm_report
from repro.ps import PsEngine
from repro.ps.engine import push_wire_values

from data.make_golden import SYSTEMS as GOLDEN_SYSTEMS
from data.make_golden import golden_workload

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_convergence.json"


# ----------------------------------------------------------------------
# wire format
# ----------------------------------------------------------------------
class TestSparsePayload:
    def test_round_trip_is_exact(self):
        vec = np.zeros(16)
        vec[[1, 5, 11]] = [0.5, -2.0, 3.25]
        payload = SparsePayload.from_dense(vec)
        assert payload.nnz == 3
        assert payload.wire_values == 6.0
        np.testing.assert_array_equal(payload.to_dense(), vec)

    def test_indices_must_be_sorted_and_in_range(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            SparsePayload(indices=np.array([3, 1]),
                          values=np.array([1.0, 2.0]), length=8)
        with pytest.raises(ValueError, match=r"\[0, length\)"):
            SparsePayload(indices=np.array([9]),
                          values=np.array([1.0]), length=8)

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="same length"):
            SparsePayload(indices=np.array([1]),
                          values=np.array([1.0, 2.0]), length=8)

    def test_off_mode_returns_the_same_object(self):
        """'off' must not even copy: the dense path stays untouched."""
        vec = np.arange(8.0)
        assert encode(vec, "off") is vec

    def test_auto_switches_at_the_break_even_point(self):
        m = 10
        sparse_vec = np.zeros(m)
        sparse_vec[:4] = 1.0  # 2 * 4 < 10 -> sparse wins
        dense_vec = np.zeros(m)
        dense_vec[:5] = 1.0  # 2 * 5 >= 10 -> dense wins (tie goes dense)
        assert isinstance(encode(sparse_vec, "auto"), SparsePayload)
        assert encode(dense_vec, "auto") is dense_vec
        # 'on' forces sparse even past the break-even point.
        assert isinstance(encode(dense_vec, "on"), SparsePayload)

    def test_materialize_and_wire_volume(self):
        vec = np.zeros(12)
        vec[[0, 7]] = [1.0, 2.0]
        payload = encode(vec, "on")
        np.testing.assert_array_equal(materialize(payload), vec)
        assert materialize(vec) is vec
        assert payload_wire_values(payload) == 4.0
        assert payload_wire_values(vec) == 12.0

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="sparse-comm mode"):
            encode(np.zeros(4), "maybe")


class TestWireValues:
    def test_break_even_rule(self):
        m = 100
        assert wire_values(49, m, "auto") == 98.0   # 2*49 < 100: sparse
        assert wire_values(50, m, "auto") == 100.0  # tie: dense
        assert wire_values(60, m, "auto") == 100.0
        assert wire_values(60, m, "on") == 120.0    # forced, even if worse
        assert wire_values(1, m, "off") == 100.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            wire_values(-1, 10, "auto")


# ----------------------------------------------------------------------
# bit-identity of the sparse collectives (hypothesis)
# ----------------------------------------------------------------------
@st.composite
def sparse_worker_models(draw):
    """k local models of common size with a drawn per-model density."""
    k = draw(st.integers(min_value=1, max_value=8))
    m = draw(st.integers(min_value=k, max_value=80))
    density = draw(st.floats(min_value=0.0, max_value=1.0))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    models = []
    for _ in range(k):
        vec = rng.standard_normal(m)
        vec[rng.random(m) >= density] = 0.0
        models.append(vec)
    return models


class TestSparseCollectivesBitIdentity:
    @given(models=sparse_worker_models(),
           mode=st.sampled_from(["auto", "on", "off"]))
    @settings(max_examples=80, deadline=None)
    def test_reduce_scatter_matches_dense_bit_for_bit(self, models, mode):
        dense = reduce_scatter([m.copy() for m in models], combine="average")
        sparse, stats = sparse_reduce_scatter(models, combine="average",
                                              mode=mode)
        assert len(sparse) == len(dense)
        for got, want in zip(sparse, dense):
            assert got.tobytes() == want.tobytes()
        assert stats.wire_values <= stats.dense_values or mode == "on"

    @given(models=sparse_worker_models(),
           mode=st.sampled_from(["auto", "on", "off"]))
    @settings(max_examples=80, deadline=None)
    def test_all_gather_matches_dense_bit_for_bit(self, models, mode):
        m = models[0].shape[0]
        partitions = reduce_scatter([v.copy() for v in models],
                                    combine="average")
        want = all_gather([p.copy() for p in partitions], m)
        got, stats = sparse_all_gather(partitions, m, mode=mode)
        assert got.tobytes() == want.tobytes()
        assert stats.phase == "all_gather"

    @given(models=sparse_worker_models())
    @settings(max_examples=40, deadline=None)
    def test_weighted_combine_matches_dense(self, models):
        weights = [float(i + 1) for i in range(len(models))]
        dense = reduce_scatter([m.copy() for m in models],
                               combine="weighted", weights=weights)
        sparse, _ = sparse_reduce_scatter(models, combine="weighted",
                                          weights=weights, mode="auto")
        for got, want in zip(sparse, dense):
            assert got.tobytes() == want.tobytes()

    @given(models=sparse_worker_models())
    @settings(max_examples=40, deadline=None)
    def test_auto_never_prices_above_dense(self, models):
        _, rs = sparse_reduce_scatter(models, mode="auto")
        assert rs.wire_values <= rs.dense_values
        assert rs.compression >= 1.0


class TestCommStatsShape:
    def test_per_sender_excludes_the_owned_slice(self):
        models = [np.ones(8) for _ in range(4)]
        _, stats = sparse_reduce_scatter(models, mode="off")
        assert len(stats.per_sender) == 4
        assert all(len(row) == 3 for row in stats.per_sender)
        # Dense mode: every message is a full slice of m/k = 2 values.
        assert stats.wire_values == stats.dense_values == 4 * 3 * 2.0

    def test_all_gather_ships_each_partition_to_every_peer(self):
        partitions = [np.zeros(2), np.zeros(2)]
        partitions[0][0] = 1.0
        _, stats = sparse_all_gather(partitions, 4, mode="on")
        # Owner 0: nnz 1 -> 2 wire values; owner 1: empty -> 0.
        assert stats.per_sender == ((2.0,), (0.0,))
        assert stats.dense_values == 4.0


# ----------------------------------------------------------------------
# AllReduce weights bugfixes (satellite regressions)
# ----------------------------------------------------------------------
class TestWeightValidation:
    def test_weights_with_unweighted_combine_raise(self):
        """Previously a silent no-op: the caller believed the average was
        weighted while the weights were dropped on the floor."""
        models = [np.ones(4), 2 * np.ones(4)]
        with pytest.raises(ValueError, match="only valid with "
                           "combine='weighted'"):
            reduce_scatter(models, combine="average", weights=[1.0, 3.0])
        with pytest.raises(ValueError, match="only valid"):
            sparse_reduce_scatter(models, combine="sum", weights=[1.0, 3.0])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     float("-inf")])
    def test_non_finite_weights_raise(self, bad):
        """NaN/inf used to slip past the `w <= 0` check (NaN compares
        false) and poison the combined model."""
        with pytest.raises(ValueError, match="positive and finite"):
            combine_weight_scale("weighted", [1.0, bad], 2)

    def test_valid_weights_normalize(self):
        scale = combine_weight_scale("weighted", [1.0, 3.0], 2)
        np.testing.assert_allclose(scale, [0.25, 0.75])
        assert combine_weight_scale("average", None, 2) is None


# ----------------------------------------------------------------------
# treeAggregate fan-in wire sizes
# ----------------------------------------------------------------------
class TestTreeFanInWire:
    def _vectors(self, k, m, nnz):
        out = []
        for e in range(k):
            vec = np.zeros(m)
            vec[e * nnz:(e + 1) * nnz] = 1.0
            out.append([vec])
        return out

    def test_depth2_counts_network_messages_only(self):
        k, m, nnz = 4, 37, 3
        tree = TreeAggregateModel(depth=2)
        wire = tree_fan_in_wire(self._vectors(k, m, nnz), tree.plan(k),
                                m, "on")
        # a = 2 aggregators; executors 2 and 3 cross the network (their
        # own vectors would be local on aggregators 0 and 1).
        assert wire.leaf_values == ((6.0,), (6.0,), (6.0,), (6.0,))
        # Each aggregator's partial carries the union of its group's two
        # disjoint supports: 2 * (2 * nnz) wire values.
        assert wire.partial_values == (12.0, 12.0)
        assert wire.wire_values == 6.0 * 2 + 12.0 * 2
        assert wire.dense_values == float(m) * (2 + 2)

    def test_depth1_every_leaf_crosses(self):
        k, m, nnz = 4, 37, 3
        tree = TreeAggregateModel(depth=1)
        wire = tree_fan_in_wire(self._vectors(k, m, nnz), tree.plan(k),
                                m, "on")
        assert wire.partial_values == ()
        assert wire.wire_values == 6.0 * 4
        assert wire.dense_values == float(m) * 4

    def test_off_mode_prices_dense(self):
        k, m = 3, 12
        wire = tree_fan_in_wire(self._vectors(k, m, 1), {}, m, "off")
        assert wire.wire_values == wire.dense_values == float(m) * 3
        assert wire.compression == 1.0


# ----------------------------------------------------------------------
# nnz-aware pricing through the engines
# ----------------------------------------------------------------------
def _flat_cluster(executors=4, alpha=1.0e-5):
    """Bandwidth-dominated homogeneous cluster (tiny per-message alpha)."""
    return ClusterSpec(
        nodes=homogeneous_nodes(executors + 1, speed=1.0, cores=16,
                                memory_gb=24.0),
        network=NetworkModel(bandwidth=GIGABIT, alpha=alpha))


class TestEnginePricing:
    def test_shuffle_wire_shortens_reduce_scatter(self):
        m, k = 1000, 4
        cluster = _flat_cluster(k)
        sizes = [m // k - (m // k) // 2] * (k - 1)
        wire = CommStats(phase="reduce_scatter",
                         dense_values=float((k - 1) * m),
                         wire_values=float(sum(sizes) * k),
                         per_sender=tuple(tuple(float(s) for s in sizes)
                                          for _ in range(k)))
        dense_engine = BspEngine(cluster)
        sparse_engine = BspEngine(cluster)
        dense_seconds = dense_engine.reduce_scatter_phase(m, step=1)
        sparse_seconds = sparse_engine.reduce_scatter_phase(m, step=1,
                                                           wire=wire)
        assert sparse_seconds < dense_seconds
        record = sparse_engine.comm_records[-1]
        assert record.phase == "reduce_scatter"
        assert record.compression == pytest.approx(2.0, rel=0.01)
        assert record.seconds < record.dense_seconds

    def test_tree_wire_shortens_aggregation(self):
        m, k = 1000, 4
        cluster = _flat_cluster(k)
        tree = TreeAggregateModel(depth=2)
        vectors = []
        for e in range(k):
            vec = np.zeros(m)
            vec[e * 10:(e + 1) * 10] = 1.0
            vectors.append([vec])
        wire = tree_fan_in_wire(vectors, tree.plan(k), m, "auto")
        dense_engine = BspEngine(cluster, tree=tree)
        sparse_engine = BspEngine(cluster, tree=tree)
        dense_seconds = dense_engine.tree_aggregate_phase(m, step=1)
        sparse_seconds = sparse_engine.tree_aggregate_phase(m, step=1,
                                                           wire=wire)
        assert sparse_seconds < dense_seconds
        record = sparse_engine.comm_records[-1]
        assert record.phase == "tree_aggregate"
        assert record.wire_values == wire.wire_values
        assert record.speedup > 1.0

    def test_no_wire_is_bit_identical_to_the_dense_engine(self):
        """The default path must not move by a single ulp: pricing without
        a wire reproduces the pre-sparse engine exactly."""
        m, k = 480, 4
        cluster_a, cluster_b = cluster1(executors=k), cluster1(executors=k)
        a, b = BspEngine(cluster_a), BspEngine(cluster_b)
        dense_values = float((k - 1) * m)
        wire = CommStats(phase="reduce_scatter", dense_values=dense_values,
                         wire_values=dense_values,
                         per_sender=tuple(tuple([m / k] * (k - 1))
                                          for _ in range(k)))
        seconds_a = a.reduce_scatter_phase(m, step=1)
        seconds_b = b.reduce_scatter_phase(m, step=1, wire=wire)
        # A dense-shaped wire prices identically; None skips the wire
        # entirely and must match too.
        assert seconds_a == seconds_b
        assert a.comm_records[0].seconds == b.comm_records[0].seconds
        assert a.now == b.now

    def test_traffic_lands_in_trace_values(self):
        m, k = 1000, 4
        engine = BspEngine(_flat_cluster(k))
        engine.all_gather_phase(m, step=1)
        total = engine.trace.traffic_values(step=1)
        # Every executor ships its k-1 pieces of m/k coordinates.
        assert total == pytest.approx(k * (k - 1) * (m / k))


class TestPsEnginePricing:
    def test_dense_comm_formula_is_unchanged(self):
        cluster = cluster1(executors=4)
        engine = PsEngine(cluster)
        m = 800
        net = cluster.network
        pull = (engine.num_servers * net.alpha
                + m * net.bytes_per_value / net.bandwidth
                * max(1.0, engine.num_workers / engine.num_servers))
        assert engine.comm_seconds(m) == 2.0 * pull

    def test_sparse_push_is_cheaper_and_recorded(self):
        cluster = _flat_cluster(4)
        m = 10_000
        dense_engine = PsEngine(cluster)
        sparse_engine = PsEngine(cluster)
        compute = [0.1] * 4
        dense_finish = dense_engine.run_step(compute, m)
        sparse_finish = sparse_engine.run_step(compute, m,
                                               push_values=[40.0] * 4)
        assert sparse_finish < dense_finish
        record = sparse_engine.comm_records[0]
        assert record.phase == "ps_pull_push"
        assert record.dense_values == 2.0 * m * 4
        assert record.wire_values == (m + 40.0) * 4
        assert record.seconds < record.dense_seconds

    def test_push_wire_values_uses_the_delta_support(self):
        w = np.zeros(100)
        local = w.copy()
        local[[3, 7]] = 1.0
        sizes = push_wire_values(w, [local, w.copy()], "auto")
        assert sizes == [4.0, 0.0]
        assert push_wire_values(w, [local], "off") is None


# ----------------------------------------------------------------------
# end to end: >= 5x on a 1%-density workload, numerics untouched
# ----------------------------------------------------------------------
def _one_percent_run(mode: str):
    # feature_skew=0 keeps the 1% support uniform across owner slices
    # (the default CTR-style skew concentrates it on owner 0, which is
    # the busiest-sender regime the bench explores instead); local SGD
    # touches every partition row per superstep, so the row count bounds
    # the union support the wire carries.
    dataset = generate(SyntheticSpec(n_rows=8, n_features=50_000,
                                     nnz_per_row=500.0, noise=0.02,
                                     feature_skew=0.0, seed=29),
                       name="sparse-1pct")
    cluster = _flat_cluster(executors=4, alpha=1.0e-5)
    config = TrainerConfig(max_steps=3, learning_rate=0.5,
                           lr_schedule="inv_sqrt", local_chunk_size=2,
                           seed=5, sparse_comm=mode)
    trainer = MLlibStarTrainer(Objective("hinge", "l2", 0.1), cluster,
                               config)
    return trainer.fit(dataset)


class TestSparseCommSpeedup:
    @pytest.fixture(scope="class")
    def runs(self):
        return {mode: _one_percent_run(mode) for mode in ("off", "auto")}

    def test_numerics_are_bit_identical(self, runs):
        """Sparsity changes what the wire costs, never what it carries."""
        assert (runs["auto"].final_objective
                == runs["off"].final_objective)
        assert np.array_equal(runs["auto"].model.weights,
                              runs["off"].model.weights)

    def test_comm_seconds_drop_at_least_5x(self, runs):
        auto = runs["auto"]
        assert auto.comm, "auto run must emit comm records"
        total_wire = sum(r.seconds for r in auto.comm)
        total_dense = sum(r.dense_seconds for r in auto.comm)
        assert total_dense / total_wire >= 5.0
        # Per superstep, not just in aggregate.
        steps = sorted({r.step for r in auto.comm})
        for step in steps:
            wire = sum(r.seconds for r in auto.comm if r.step == step)
            dense = sum(r.dense_seconds for r in auto.comm
                        if r.step == step)
            assert dense / wire >= 5.0, f"step {step} below 5x"

    def test_off_mode_records_dense_pricing(self, runs):
        for record in runs["off"].comm:
            assert record.seconds == record.dense_seconds
            assert record.compression == 1.0

    def test_train_result_properties(self, runs):
        auto = runs["auto"]
        assert auto.comm_seconds == pytest.approx(
            sum(r.seconds for r in auto.comm))
        assert auto.comm_compression >= 5.0

    def test_comm_report_aggregates(self, runs):
        report = comm_report(runs["auto"])
        assert report.speedup >= 5.0
        assert ({phase for phase, _, _ in report.by_phase}
                == {"reduce_scatter", "all_gather"})
        text = report.describe()
        assert "reduce_scatter" in text and "x" in text


# ----------------------------------------------------------------------
# golden convergence under sparse_comm='auto'
# ----------------------------------------------------------------------
@pytest.mark.parametrize("system", sorted(GOLDEN_SYSTEMS))
def test_golden_numerics_survive_auto_mode(system):
    """All nine systems reproduce the golden objectives bit-exactly with
    sparse communication enabled: the wire format is pricing-only."""
    golden = json.loads(GOLDEN_PATH.read_text())
    trainer_cls, loss = GOLDEN_SYSTEMS[system]
    dataset, cluster, config = golden_workload()
    config = config.with_overrides(sparse_comm="auto")
    result = trainer_cls(Objective(loss, "l2", 0.1), cluster,
                         config).fit(dataset)
    assert result.history.total_steps == golden[system]["total_steps"]
    assert result.final_objective == pytest.approx(
        golden[system]["final_objective"], rel=1e-9)


# ----------------------------------------------------------------------
# config / CLI plumbing
# ----------------------------------------------------------------------
class TestConfigAndCli:
    def test_config_validates_mode(self):
        with pytest.raises(ValueError, match="sparse_comm"):
            TrainerConfig(sparse_comm="sometimes")

    def test_default_is_off(self):
        assert TrainerConfig().sparse_comm == "off"

    def test_cli_flag_parses(self):
        args = build_parser().parse_args(["train", "--sparse-comm", "auto"])
        assert args.sparse_comm == "auto"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--sparse-comm", "never"])


# ----------------------------------------------------------------------
# linter scope (satellite)
# ----------------------------------------------------------------------
class TestLinterScope:
    def test_det002_covers_the_sparse_wire_module(self, tmp_path):
        # DET002's scope is no longer a filename list on the rule: it is
        # derived from the call graph, with every function under a
        # collectives/ (or ps/) package as a root.  The sparse wire
        # module stays covered; metrics reporting stays out of scope.
        from repro.analysis import run_analysis
        bad = ("def combine(parts):\n"
               "    acc = 0.0\n"
               "    for p in set(parts):\n"
               "        acc += p\n"
               "    return acc\n")
        (tmp_path / "collectives").mkdir()
        (tmp_path / "collectives" / "sparse.py").write_text(bad)
        (tmp_path / "metrics").mkdir()
        (tmp_path / "metrics" / "reporting.py").write_text(bad)
        result = run_analysis([tmp_path], select=["DET002"])
        hit_dirs = {v.path.parent.name for v in result.violations}
        assert hit_dirs == {"collectives"}


# ----------------------------------------------------------------------
# metrics/data bugfix regressions (satellites)
# ----------------------------------------------------------------------
class TestHistogramEdgePlacement:
    def test_exact_edge_sample_matches_its_label(self):
        """A sample equal to a bucket's printed upper edge must land in
        that bucket; log10 roundoff used to push some one bucket high."""
        hist = LatencyHistogram(lo=1.0e-6, decades=7, buckets_per_decade=10)
        for idx in range(1, hist._n_buckets):
            edge = hist._bucket_edge(idx)
            assert hist._bucket_index(edge) == idx, (
                f"edge {edge!r} of bucket {idx} misplaced")

    def test_underflow_and_overflow(self):
        hist = LatencyHistogram(lo=1.0e-3, decades=2, buckets_per_decade=2)
        assert hist._bucket_index(1.0e-4) == 0
        assert hist._bucket_index(1.0e3) == hist._n_buckets

    def test_bucket_rows_agree_with_recorded_edges(self):
        hist = LatencyHistogram(lo=1.0e-3, decades=3, buckets_per_decade=5)
        for idx in range(1, hist._n_buckets):
            hist.record(hist._bucket_edge(idx))
        rows = hist.bucket_rows()
        assert sum(count for _, count, _ in rows) == hist.count
        assert all(count == 1 for _, count, _ in rows)

    def test_summary_uses_one_sort(self, monkeypatch):
        hist = LatencyHistogram()
        for value in [0.5, 0.1, 0.9, 0.3]:
            hist.record(value)
        calls = {"n": 0}
        import repro.metrics.histogram as histogram_module
        real_sorted = sorted

        def counting_sorted(seq, *a, **kw):
            calls["n"] += 1
            return real_sorted(seq, *a, **kw)

        monkeypatch.setattr(histogram_module, "sorted", counting_sorted,
                            raising=False)
        summary = hist.summary()
        assert summary["p50"] == 0.3 and summary["p99"] == 0.9
        assert calls["n"] == 1
        # A new sample invalidates the cache; quantiles stay exact.
        hist.record(0.2)
        assert hist.percentile(50) == 0.3
        assert calls["n"] == 2


class TestLibsvmLabelValidation:
    def test_fractional_label_raises_instead_of_truncating(self, tmp_path):
        """`int(0.7)` used to silently write label 0 — the file no longer
        round-tripped to the dataset that produced it."""
        ds = generate(SyntheticSpec(n_rows=6, n_features=5, seed=3), "bad")
        ds.y[2] = 0.7
        with pytest.raises(ValueError, match="not in"):
            write_libsvm(ds, tmp_path / "bad.libsvm")

    def test_valid_labels_still_write(self, tmp_path):
        ds = generate(SyntheticSpec(n_rows=6, n_features=5, seed=3), "ok")
        path = tmp_path / "ok.libsvm"
        write_libsvm(ds, path)
        text = path.read_text()
        assert all(line.split()[0] in ("+1", "-1")
                   for line in text.splitlines())
