"""Topology collectives: bit-identity battery, tier invariants, contracts.

Locks down the aggregation ladder (``--collective flat|hier|switch``):

* hier/switch data planes are bit-identical to flat across worker
  counts, node shapes, densities and combine modes (hypothesis sweep);
* the ``2 k m`` traffic invariant splits across tiers exactly;
* all nine systems reproduce the golden convergence numbers under
  ``--collective hier`` and ``switch`` (seconds change by design —
  topology is a pricing choice);
* switch slot exhaustion stretches simulated seconds, never weights;
* the exact SparCML break-even (``2 * nnz == m``) is a tested ``<`` /
  ``<=`` contract for both the payload encoder and the in-network
  fallback;
* regression coverage for the empty fan-in :class:`ValueError` and the
  tiered-bandwidth validation this PR added.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from data.make_golden import SYSTEMS, golden_workload
from repro.cli import build_parser
from repro.cluster import (ClusterSpec, NetworkModel, TieredNetworkModel,
                           cluster1, tiered_cluster)
from repro.collectives import (SparsePayload, all_gather, encode,
                               hier_all_gather, hier_dense_wire,
                               hier_reduce_scatter, hier_tree_fan_in,
                               reduce_scatter, sparse_all_gather,
                               sparse_reduce_scatter, switch_all_gather,
                               switch_dense_wire, switch_reduce_scatter,
                               switch_rounds, switch_stream_seconds,
                               switch_tree_fan_in, traffic_values,
                               tree_fan_in_wire, wire_values)
from repro.core import TrainerConfig
from repro.engine import BspEngine, ShuffleModel
from repro.glm import Objective

# ----------------------------------------------------------------------
# shared workload helpers
# ----------------------------------------------------------------------


def _models(k: int, m: int, density: float, seed: int) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(k):
        vec = rng.normal(size=m)
        if density < 1.0:
            vec = np.where(rng.random(m) < density, vec, 0.0)
        out.append(vec)
    return out


def _contiguous_groups(sizes: list[int]) -> tuple[tuple[int, ...], ...]:
    groups: list[tuple[int, ...]] = []
    base = 0
    for size in sizes:
        groups.append(tuple(range(base, base + size)))
        base += size
    return tuple(groups)


@st.composite
def topology_cases(draw):
    sizes = draw(st.lists(st.integers(1, 3), min_size=1, max_size=3))
    k = sum(sizes)
    m = draw(st.integers(k, 64))
    density = draw(st.floats(0.0, 1.0))
    combine = draw(st.sampled_from(["average", "sum", "weighted"]))
    mode = draw(st.sampled_from(["off", "auto", "on"]))
    seed = draw(st.integers(0, 2 ** 16))
    return sizes, m, density, combine, mode, seed


# ----------------------------------------------------------------------
# (i) bit-identity: hier/switch vs flat, kernel level
# ----------------------------------------------------------------------
class TestBitIdentity:

    @settings(deadline=None, max_examples=40)
    @given(topology_cases())
    def test_hier_matches_flat_exactly(self, case):
        sizes, m, density, combine, mode, seed = case
        k = sum(sizes)
        groups = _contiguous_groups(sizes)
        models = _models(k, m, density, seed)
        weights = ([float(i + 1) for i in range(k)]
                   if combine == "weighted" else None)
        flat_parts = reduce_scatter(models, combine=combine,
                                    weights=weights)
        hier_parts, rs_wire = hier_reduce_scatter(
            models, groups, combine=combine, weights=weights, mode=mode)
        for a, b in zip(flat_parts, hier_parts):
            assert np.array_equal(a, b)
        flat_full = all_gather(flat_parts, m)
        hier_full, ag_wire = hier_all_gather(hier_parts, m, groups,
                                             mode=mode)
        assert np.array_equal(flat_full, hier_full)
        if mode == "off":
            assert rs_wire.wire_values == rs_wire.dense_values
            assert ag_wire.wire_values == ag_wire.dense_values
        elif mode == "auto":
            # 'on' may exceed dense (the crossover it demonstrates);
            # 'auto' never does.
            assert rs_wire.wire_values <= rs_wire.dense_values
            assert ag_wire.wire_values <= ag_wire.dense_values

    @settings(deadline=None, max_examples=40)
    @given(topology_cases())
    def test_switch_matches_flat_exactly(self, case):
        sizes, m, density, combine, mode, seed = case
        k = sum(sizes)
        models = _models(k, m, density, seed)
        weights = ([float(i + 1) for i in range(k)]
                   if combine == "weighted" else None)
        flat_parts = reduce_scatter(models, combine=combine,
                                    weights=weights)
        sw_parts, rs_wire = switch_reduce_scatter(
            models, combine=combine, weights=weights, mode=mode,
            pool_slots=2, chunk_values=7)
        for a, b in zip(flat_parts, sw_parts):
            assert np.array_equal(a, b)
        sw_full, _ = switch_all_gather(sw_parts, m, mode=mode,
                                       pool_slots=2, chunk_values=7)
        assert np.array_equal(all_gather(flat_parts, m), sw_full)
        # 'on' always bypasses the switch; 'off' never does.
        if mode == "on":
            assert rs_wire.fallback is not None
        if mode == "off":
            assert rs_wire.fallback is None

    @settings(deadline=None, max_examples=25)
    @given(topology_cases())
    def test_hier_tree_sizes_are_union_supports(self, case):
        sizes, m, density, combine, mode, seed = case
        del combine
        k = sum(sizes)
        groups = _contiguous_groups(sizes)
        models = _models(k, m, density, seed)
        wire = hier_tree_fan_in([[v] for v in models], groups, m,
                                mode=mode)
        if mode != "on":  # forced sparse may exceed dense (crossover)
            assert wire.wire_values <= wire.dense_values
        assert wire.dense_values == float(m) * (k - len(groups)) + float(
            m) * len(groups)


# ----------------------------------------------------------------------
# (ii) the 2km traffic invariant, split per tier
# ----------------------------------------------------------------------
class TestTrafficInvariant:

    @settings(deadline=None, max_examples=40)
    @given(st.lists(st.integers(1, 4), min_size=1, max_size=4),
           st.integers(16, 96))
    def test_hier_tiers_sum_to_flat_traffic(self, sizes, m):
        k = sum(sizes)
        groups = _contiguous_groups(sizes)
        n = len(groups)
        rs = hier_dense_wire("reduce_scatter", m, groups)
        ag = hier_dense_wire("all_gather", m, groups)
        intra = rs.intra_dense + ag.intra_dense
        cross = rs.cross_dense + ag.cross_dense
        assert intra == 2.0 * (k - n) * m
        assert cross == 2.0 * (n - 1) * m
        assert intra + cross == traffic_values(m, k)
        # Dense wires move exactly what they account.
        assert rs.wire_values == rs.dense_values
        assert ag.wire_values == ag.dense_values

    @settings(deadline=None, max_examples=25)
    @given(st.integers(1, 8), st.integers(16, 96))
    def test_switch_moves_km_up_and_km_down(self, k, m):
        rs = switch_dense_wire("reduce_scatter", m, k)
        ag = switch_dense_wire("all_gather", m, k)
        assert rs.wire_values == float(k) * m
        assert ag.wire_values == float(k) * m

    def test_hier_tree_dense_split(self):
        groups = ((0, 1, 2), (3, 4), (5,))
        wire = hier_dense_wire("tree_aggregate", 40, groups,
                               messages_per_executor=2)
        # members ship mpe messages each; one partial per machine.
        assert wire.intra_dense == 40.0 * 2 * (6 - 3)
        assert wire.cross_dense == 40.0 * 3


# ----------------------------------------------------------------------
# exact break-even contracts (2 * nnz == m): '<' vs '<='
# ----------------------------------------------------------------------
class TestExactBreakEven:

    def test_wire_values_tie_goes_dense(self):
        assert wire_values(50, 100, "auto") == 100.0  # 2*50 == 100: dense
        assert wire_values(49, 100, "auto") == 98.0   # strictly below
        assert wire_values(51, 100, "auto") == 100.0
        assert wire_values(50, 100, "on") == 100.0    # forced sparse
        assert wire_values(50, 100, "off") == 100.0

    def test_encode_tie_goes_dense(self):
        vec = np.zeros(10)
        vec[:5] = 1.0  # 2 * nnz == m exactly
        assert isinstance(encode(vec, "auto"), np.ndarray)
        assert isinstance(encode(vec, "on"), SparsePayload)
        vec2 = np.zeros(10)
        vec2[:4] = 1.0  # strictly below the break-even
        assert isinstance(encode(vec2, "auto"), SparsePayload)

    def _half_support_models(self) -> list[np.ndarray]:
        # k=2, m=8, slices of 4: every off-slice message has nnz == 2,
        # so 2 * nnz == slice size — exactly the break-even, per message.
        a = np.zeros(8)
        a[[0, 1, 4, 5]] = 1.0
        b = np.zeros(8)
        b[[2, 3, 6, 7]] = 1.0
        return [a, b]

    def test_switch_stays_in_network_at_exact_break_even(self):
        models = self._half_support_models()
        _, wire = switch_reduce_scatter(models, mode="auto")
        assert wire.fallback is None  # tie prices dense: switch carries it

    def test_switch_falls_back_strictly_below_break_even(self):
        a = np.zeros(8)
        a[[0, 4]] = 1.0  # nnz 1 per slice: 2 * 1 < 4
        b = np.zeros(8)
        b[[1, 5]] = 1.0
        _, wire = switch_reduce_scatter([a, b], mode="auto")
        assert wire.fallback is not None
        assert wire.wire_values == wire.fallback.wire_values
        assert wire.wire_values < wire.dense_values

    def test_switch_all_gather_break_even(self):
        tie = [np.array([1.0, 1.0, 0.0, 0.0]),
               np.array([0.0, 0.0, 1.0, 1.0])]
        _, wire = switch_all_gather(tie, 8, mode="auto")
        assert wire.fallback is None
        below = [np.array([1.0, 0.0, 0.0, 0.0]),
                 np.array([0.0, 0.0, 0.0, 1.0])]
        _, wire = switch_all_gather(below, 8, mode="auto")
        assert wire.fallback is not None

    def test_switch_forced_sparse_always_falls_back(self):
        dense = [np.ones(8), np.full(8, 2.0)]
        _, wire = switch_reduce_scatter(dense, mode="on")
        assert wire.fallback is not None  # switch cannot carry payloads

    def test_switch_tree_break_even(self):
        tie = np.zeros(8)
        tie[:4] = 1.0
        wire = switch_tree_fan_in([[tie], [tie.copy()]], {0: 2}, 8,
                                  mode="auto")
        assert wire.fallback is None
        below = np.zeros(8)
        below[:3] = 1.0
        wire = switch_tree_fan_in([[below], [below.copy()]], {0: 2}, 8,
                                  mode="auto")
        assert wire.fallback is not None


# ----------------------------------------------------------------------
# network/cluster regressions (satellite 2)
# ----------------------------------------------------------------------
class TestNetworkRegressions:

    def test_empty_fan_in_raises_clear_error(self):
        net = NetworkModel()
        with pytest.raises(ValueError, match="at least one message"):
            net.fan_in_varied_seconds([])

    def test_single_message_fan_in_is_one_transfer(self):
        net = NetworkModel()
        assert (net.fan_in_varied_seconds([100.0])
                == net.transfer_seconds(100.0))

    def test_one_executor_shuffle_sender_costs_nothing(self):
        # Regression: k == 1 produces an empty message list, which must
        # price 0.0 at the call site rather than hitting the fan-in
        # ValueError.
        assert ShuffleModel().sender_seconds(cluster1(executors=1),
                                             []) == 0.0

    def test_tiered_model_validates_bandwidth_ordering(self):
        with pytest.raises(ValueError, match="must be at least the "
                                             "cross-node"):
            TieredNetworkModel(bandwidth=1.0e9, intra_bandwidth=1.0e8)
        with pytest.raises(ValueError, match="intra_bandwidth"):
            TieredNetworkModel(intra_bandwidth=0.0)
        with pytest.raises(ValueError, match="intra_alpha"):
            TieredNetworkModel(intra_alpha=-1.0e-6)

    def test_intra_transfers_are_cheaper_on_the_fast_tier(self):
        net = TieredNetworkModel(bandwidth=1.0e9, alpha=1.0e-3,
                                 intra_bandwidth=1.0e10,
                                 intra_alpha=1.0e-6)
        assert (net.intra_transfer_seconds(1.0e6)
                < net.transfer_seconds(1.0e6))
        assert net.intra_transfer_seconds(0.0) == 0.0
        with pytest.raises(ValueError):
            net.intra_transfer_seconds(-1.0)
        # The base model's intra tier is just its own link.
        base = NetworkModel()
        assert (base.intra_transfer_seconds(512.0)
                == base.transfer_seconds(512.0))

    def test_executor_groups_and_placement_validation(self):
        spec = tiered_cluster(machines=2, executors_per_machine=3)
        assert spec.num_executors == 6
        assert spec.executor_groups() == ((0, 1, 2), (3, 4, 5))
        assert isinstance(spec.network, TieredNetworkModel)
        flat = cluster1(executors=4)
        assert flat.placement is None
        assert flat.executor_groups() == ((0,), (1,), (2,), (3,))
        with pytest.raises(ValueError):
            ClusterSpec(nodes=spec.nodes, placement=(0, 1))  # wrong length
        with pytest.raises(ValueError):
            tiered_cluster(machines=0)


# ----------------------------------------------------------------------
# degenerate equality: singleton groups price exactly like flat
# ----------------------------------------------------------------------
class TestDegenerateHierEqualsFlat:

    def test_singleton_groups_price_bitwise_like_flat_wire(self):
        cluster = cluster1(executors=4)
        groups = cluster.executor_groups()  # all singletons: no placement
        m = 64
        models = _models(4, m, 0.4, seed=11)

        flat_engine = BspEngine(cluster)
        flat_parts, flat_stats = sparse_reduce_scatter(models, mode="auto")
        d_rs_flat = flat_engine.reduce_scatter_phase(m, 0, wire=flat_stats)
        _, flat_ag = sparse_all_gather(flat_parts, m, mode="auto")
        d_ag_flat = flat_engine.all_gather_phase(m, 0, wire=flat_ag)

        hier_engine = BspEngine(cluster)
        hier_parts, rs_wire = hier_reduce_scatter(models, groups,
                                                  mode="auto")
        d_rs_hier = hier_engine.reduce_scatter_phase(m, 0, wire=rs_wire)
        _, ag_wire = hier_all_gather(hier_parts, m, groups, mode="auto")
        d_ag_hier = hier_engine.all_gather_phase(m, 0, wire=ag_wire)

        assert d_rs_hier == d_rs_flat  # bitwise: same message schedule
        assert d_ag_hier == d_ag_flat
        flat_rec = flat_engine.comm_records
        hier_rec = hier_engine.comm_records
        assert [r.seconds for r in hier_rec] == [r.seconds
                                                 for r in flat_rec]
        assert [r.wire_values for r in hier_rec] == [r.wire_values
                                                     for r in flat_rec]


# ----------------------------------------------------------------------
# (iii) golden convergence survives --collective hier / switch
# ----------------------------------------------------------------------
GOLDEN_PATH = Path(__file__).parent / "data" / "golden_convergence.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    import json
    return json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("collective", ["hier", "switch"])
@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_golden_numerics_survive_topologies(system, collective, golden):
    """Every system reproduces its pinned objective under every topology.

    Simulated seconds are *allowed* to change (pricing the schedule is
    the topology's whole point); the weights are not.
    """
    trainer_cls, loss = SYSTEMS[system]
    dataset, cluster, config = golden_workload()
    result = trainer_cls(
        Objective(loss, "l2", 0.1), cluster,
        config.with_overrides(collective=collective)).fit(dataset)
    pinned = golden[system]
    assert result.history.total_steps == pinned["total_steps"]
    assert result.final_objective == pytest.approx(
        pinned["final_objective"], rel=1e-9), (
        f"{system} under --collective {collective}: weights drifted — "
        "topology must be a pricing choice only")


def test_placement_changes_seconds_not_weights():
    """A real placement map reprices hier without touching numerics."""
    dataset, _, config = golden_workload()
    flat_cluster = cluster1(executors=4)
    placed = tiered_cluster(machines=2, executors_per_machine=2)
    objective = Objective("hinge", "l2", 0.1)
    trainer_cls, _ = SYSTEMS["MLlib*"]
    base = trainer_cls(objective, flat_cluster, config).fit(dataset)
    hier = trainer_cls(objective, placed,
                       config.with_overrides(collective="hier")
                       ).fit(dataset)
    assert hier.final_objective == pytest.approx(base.final_objective,
                                                 rel=1e-9)
    assert hier.history.total_steps == base.history.total_steps


# ----------------------------------------------------------------------
# (iv) switch slot exhaustion: seconds stretch, weights do not
# ----------------------------------------------------------------------
class TestSlotExhaustion:

    def test_stall_rounds_add_alpha_only(self):
        net = NetworkModel()
        roomy = switch_stream_seconds(net, 1000.0, 10, 100)  # 1 round
        tight = switch_stream_seconds(net, 1000.0, 10, 5)    # 20 rounds
        assert switch_rounds(1000.0, 10, 100) == 1
        assert switch_rounds(1000.0, 10, 5) == 20
        assert tight - roomy == pytest.approx(19 * net.alpha, rel=1e-12)
        assert switch_stream_seconds(net, 0.0, 10, 5) == 0.0

    def test_exhaustion_stretches_seconds_never_weights(self):
        dataset, cluster, config = golden_workload()
        trainer_cls, loss = SYSTEMS["MLlib*"]
        objective = Objective(loss, "l2", 0.1)
        roomy = trainer_cls(
            objective, cluster,
            config.with_overrides(collective="switch")).fit(dataset)
        tight = trainer_cls(
            objective, cluster,
            config.with_overrides(collective="switch", switch_slots=1,
                                  switch_chunk=8)).fit(dataset)
        assert tight.final_objective == roomy.final_objective  # bitwise
        assert (tight.history.total_steps
                == roomy.history.total_steps)
        assert (tight.history.total_seconds
                > roomy.history.total_seconds)

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            switch_rounds(10.0, 0, 4)
        with pytest.raises(ValueError):
            switch_rounds(10.0, 4, 0)
        with pytest.raises(ValueError):
            switch_rounds(-1.0, 4, 4)


# ----------------------------------------------------------------------
# config / CLI plumbing and linter scope
# ----------------------------------------------------------------------
class TestConfigAndCli:

    def test_config_validates_collective(self):
        with pytest.raises(ValueError, match="collective"):
            TrainerConfig(collective="mesh")
        with pytest.raises(ValueError, match="switch_slots"):
            TrainerConfig(switch_slots=0)
        with pytest.raises(ValueError, match="switch_chunk"):
            TrainerConfig(switch_chunk=0)
        cfg = TrainerConfig(collective="switch", switch_slots=4,
                            switch_chunk=16)
        assert cfg.collective == "switch"

    def test_cli_parses_collective_flags(self):
        args = build_parser().parse_args(
            ["train", "--collective", "hier"])
        assert args.collective == "hier"
        args = build_parser().parse_args(
            ["train", "--collective", "switch", "--switch-slots", "4",
             "--switch-chunk", "64"])
        assert args.switch_slots == 4
        assert args.switch_chunk == 64
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "--collective", "mesh"])

    def test_det002_covers_topology_modules(self, tmp_path):
        # Scope is derived, not declared: every function under a
        # collectives/ package is a DET002 root, a cluster helper is
        # covered the moment a collective calls it, and an unrelated
        # module stays out of scope.
        from repro.analysis import run_analysis
        bad = ("def fold{n}(parts):\n"
               "    acc = 0.0\n"
               "    for p in set(parts):\n"
               "        acc += p\n"
               "    return acc\n")
        (tmp_path / "collectives").mkdir()
        (tmp_path / "collectives" / "__init__.py").write_text("")
        (tmp_path / "collectives" / "hierarchical.py").write_text(
            bad.format(n=1))
        (tmp_path / "collectives" / "innetwork.py").write_text(
            "from cluster.network import hop_order\n\n\n"
            "def combine(parts):\n"
            "    return hop_order(parts)\n")
        (tmp_path / "cluster").mkdir()
        (tmp_path / "cluster" / "__init__.py").write_text("")
        (tmp_path / "cluster" / "network.py").write_text(
            "def hop_order(parts):\n"
            "    return [p for p in set(parts)]\n")
        (tmp_path / "glm").mkdir()
        (tmp_path / "glm" / "objective.py").write_text(bad.format(n=2))
        result = run_analysis([tmp_path], select=["DET002"])
        hit = {v.path.name for v in result.violations}
        assert hit == {"hierarchical.py", "network.py"}


# ----------------------------------------------------------------------
# engine plumbing details worth pinning
# ----------------------------------------------------------------------
class TestEnginePlumbing:

    def test_switch_fallback_unwraps_to_flat_sparse_pricing(self):
        # A switch wire whose sparse fallback fired must price exactly
        # like the flat sparse round it wraps.
        cluster = cluster1(executors=4)
        m = 64
        models = _models(4, m, 0.05, seed=5)
        flat_parts, stats = sparse_reduce_scatter(models, mode="on")
        sw_parts, wire = switch_reduce_scatter(models, mode="on")
        assert wire.fallback is not None
        for a, b in zip(flat_parts, sw_parts):
            assert np.array_equal(a, b)
        eng_flat = BspEngine(cluster)
        eng_sw = BspEngine(cluster)
        d_flat = eng_flat.reduce_scatter_phase(m, 0, wire=stats)
        d_sw = eng_sw.reduce_scatter_phase(m, 0, wire=wire)
        assert d_sw == d_flat
        assert (eng_sw.comm_records[0].wire_values
                == eng_flat.comm_records[0].wire_values)

    def test_hier_tree_prices_leaders_and_driver(self):
        cluster = tiered_cluster(machines=2, executors_per_machine=2)
        m = 32
        models = _models(4, m, 1.0, seed=9)
        wire = hier_tree_fan_in([[v] for v in models],
                                cluster.executor_groups(), m)
        engine = BspEngine(cluster)
        duration = engine.tree_aggregate_phase(m, 0, wire=wire)
        assert duration > 0
        rec = engine.comm_records[0]
        assert rec.phase == "tree_aggregate"
        assert rec.wire_values == wire.wire_values

    def test_switch_tree_wire_counts_driver_result(self):
        wire = switch_tree_fan_in([[np.ones(16)], [np.ones(16)]],
                                  {0: 2}, 16)
        assert wire.wire_values == 2 * 16.0 + 16.0
        engine = BspEngine(cluster1(executors=2))
        duration = engine.tree_aggregate_phase(16, 0, wire=wire)
        assert duration > 0
        assert engine.comm_records[0].wire_values == wire.wire_values

    def test_wire_executor_mismatch_raises(self):
        engine = BspEngine(cluster1(executors=4))
        groups = ((0, 1), (2,))  # 3 executors, cluster has 4
        wire = hier_dense_wire("reduce_scatter", 32, groups)
        with pytest.raises(ValueError, match="executors"):
            engine.reduce_scatter_phase(32, 0, wire=wire)
        sw = switch_dense_wire("all_gather", 32, 3)
        with pytest.raises(ValueError, match="senders"):
            engine.all_gather_phase(32, 0, wire=sw)
