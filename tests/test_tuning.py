"""Unit tests for repro.tuning (grid search)."""

import pytest

from repro.core import MLlibStarTrainer, TrainerConfig
from repro.glm import Objective
from repro.tuning import GridSearch, expand_grid


class TestExpandGrid:
    def test_cartesian_product(self):
        grid = expand_grid({"learning_rate": [0.1, 0.5],
                            "batch_fraction": [0.01, 0.1]})
        assert len(grid) == 4
        assert {"learning_rate": 0.5, "batch_fraction": 0.01} in grid

    def test_empty_grid(self):
        assert expand_grid({}) == [{}]

    def test_single_axis(self):
        assert expand_grid({"seed": [1, 2, 3]}) == [
            {"seed": 1}, {"seed": 2}, {"seed": 3}]

    def test_rejects_non_list(self):
        with pytest.raises(ValueError, match="non-empty lists"):
            expand_grid({"learning_rate": 0.1})

    def test_rejects_empty_list(self):
        with pytest.raises(ValueError):
            expand_grid({"learning_rate": []})


class TestGridSearch:
    @pytest.fixture
    def search(self, small_cluster):
        return GridSearch(
            trainer_cls=MLlibStarTrainer,
            objective=Objective("hinge"),
            cluster=small_cluster,
            base_config=TrainerConfig(max_steps=6, seed=1),
        )

    def test_runs_every_point(self, search, tiny_dataset):
        points = search.run(tiny_dataset, {"learning_rate": [0.05, 0.2],
                                           "local_chunk_size": [16, 64]})
        assert len(points) == 4
        params_seen = {tuple(sorted(p.params.items())) for p in points}
        assert len(params_seen) == 4

    def test_sorted_best_first(self, search, tiny_dataset):
        points = search.run(tiny_dataset, {"learning_rate": [0.01, 0.2]})
        keys = [p.sort_key() for p in points]
        assert keys == sorted(keys)

    def test_converged_ranked_above_nonconverged(self, search,
                                                 tiny_dataset):
        points = search.run(tiny_dataset,
                            {"learning_rate": [0.001, 0.2]})
        if any(p.converged for p in points) and (
                not all(p.converged for p in points)):
            assert points[0].converged

    def test_best_returns_first(self, search, tiny_dataset):
        grid = {"learning_rate": [0.05, 0.2]}
        best = search.best(tiny_dataset, grid)
        assert best.sort_key() == search.run(tiny_dataset, grid)[0].sort_key()

    def test_explicit_target(self, small_cluster, tiny_dataset):
        search = GridSearch(
            trainer_cls=MLlibStarTrainer,
            objective=Objective("hinge"),
            cluster=small_cluster,
            base_config=TrainerConfig(max_steps=6, seed=1),
            target=0.99,  # trivially reachable from f(0) = 1.0
        )
        points = search.run(tiny_dataset, {"learning_rate": [0.2]})
        assert points[0].converged
        assert points[0].steps_to_target is not None

    def test_point_exposes_result(self, search, tiny_dataset):
        point = search.best(tiny_dataset, {"learning_rate": [0.2]})
        assert point.result.model.dim == tiny_dataset.n_features
        assert point.best_objective <= 1.0
