"""Tests for weighted model averaging and skewed partitioning."""

import numpy as np
import pytest

from repro.collectives import all_reduce_weighted, reduce_scatter
from repro.core import MLlibStarTrainer, TrainerConfig
from repro.data import SyntheticSpec, generate, partition_rows
from repro.glm import Objective


class TestSkewedPartitioning:
    @pytest.fixture
    def ds(self):
        return generate(SyntheticSpec(n_rows=1000, n_features=40, seed=8),
                        name="skew")

    def test_covers_all_rows(self, ds):
        parts = partition_rows(ds, 4, strategy="skewed")
        assert sum(p.n_rows for p in parts) == ds.n_rows

    def test_sizes_decrease_geometrically(self, ds):
        parts = partition_rows(ds, 4, strategy="skewed")
        sizes = [p.n_rows for p in parts]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] > 2 * sizes[-1]

    def test_no_empty_partitions(self, ds):
        parts = partition_rows(ds, 8, strategy="skewed")
        assert all(p.n_rows >= 1 for p in parts)

    def test_deterministic(self, ds):
        a = partition_rows(ds, 4, strategy="skewed", seed=2)
        b = partition_rows(ds, 4, strategy="skewed", seed=2)
        for pa, pb in zip(a, b):
            assert np.array_equal(pa.y, pb.y)


class TestWeightedReduceScatter:
    def test_equals_weighted_mean(self):
        rng = np.random.default_rng(0)
        models = [rng.normal(size=12) for _ in range(3)]
        weights = [1.0, 2.0, 7.0]
        got = all_reduce_weighted(models, weights)
        expected = (models[0] * 0.1 + models[1] * 0.2 + models[2] * 0.7)
        assert np.allclose(got, expected)

    def test_uniform_weights_equal_plain_average(self):
        rng = np.random.default_rng(1)
        models = [rng.normal(size=10) for _ in range(4)]
        weighted = all_reduce_weighted(models, [3.0] * 4)
        assert np.allclose(weighted, np.mean(models, axis=0))

    def test_validation(self):
        models = [np.ones(4), np.ones(4)]
        with pytest.raises(ValueError, match="one weight per model"):
            reduce_scatter(models, combine="weighted", weights=[1.0])
        with pytest.raises(ValueError, match="positive"):
            reduce_scatter(models, combine="weighted", weights=[1.0, 0.0])
        with pytest.raises(ValueError, match="combine"):
            reduce_scatter(models, combine="median")

    def test_unbiasedness_under_skew(self):
        """The motivating property: with unbalanced shards, weighting by
        sample count recovers the global mean of per-sample statistics,
        while plain averaging is biased toward small shards."""
        rng = np.random.default_rng(2)
        # Each "model" is its shard's mean of per-sample vectors.
        samples = rng.normal(size=(100, 6))
        shards = [samples[:80], samples[80:95], samples[95:]]
        models = [s.mean(axis=0) for s in shards]
        weights = [len(s) for s in shards]
        weighted = all_reduce_weighted(models, weights)
        assert np.allclose(weighted, samples.mean(axis=0))
        plain = np.mean(models, axis=0)
        assert not np.allclose(plain, samples.mean(axis=0))


class TestWeightedTrainer:
    def test_weighted_combine_runs(self, tiny_dataset, small_cluster):
        trainer = MLlibStarTrainer(Objective("hinge"), small_cluster,
                                   TrainerConfig(max_steps=4, seed=1),
                                   combine="weighted")
        result = trainer.fit(tiny_dataset, partition_strategy="skewed")
        assert result.final_objective < result.history.objectives()[0]

    def test_weighted_equals_average_on_balanced_partitions(
            self, tiny_dataset, small_cluster):
        cfg = TrainerConfig(max_steps=3, seed=1)
        plain = MLlibStarTrainer(Objective("hinge"), small_cluster, cfg,
                                 combine="average").fit(tiny_dataset)
        weighted = MLlibStarTrainer(Objective("hinge"), small_cluster, cfg,
                                    combine="weighted").fit(tiny_dataset)
        # 800 rows / 4 workers: exactly balanced => identical numerics.
        assert np.allclose(plain.model.weights, weighted.model.weights)

    def test_invalid_combine_rejected(self, small_cluster):
        with pytest.raises(ValueError):
            MLlibStarTrainer(Objective("hinge"), small_cluster,
                             combine="mode")
